// Property tests for the allocation-free Top-k-Pkg search kernel: the
// arena/SearchScratch machinery over the shared aggregation kernel
// (model/aggregate_kernel.h) must stay bit-compatible with the exhaustive
// NaivePackageEnumerator oracle across profiles, weight signs, nulls and φ
// — including nulls on min-aggregated features with negative weight (the
// pre-kernel exactness gap, now asserted exact) and the zero-active-weight
// tie-break — and a SearchScratch reused across heterogeneous calls must
// leak no state between them. Large-k cases exercise the bounded-heap
// collector including ties at the k-th boundary.

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "topkpkg/common/random.h"
#include "topkpkg/data/generators.h"
#include "topkpkg/model/package.h"
#include "topkpkg/topk/naive_enumerator.h"
#include "topkpkg/topk/topk_pkg.h"

namespace topkpkg::topk {
namespace {

using model::ItemTable;
using model::Package;
using model::PackageEvaluator;
using model::Profile;

struct Workload {
  std::unique_ptr<ItemTable> table;
  std::unique_ptr<Profile> profile;
  std::unique_ptr<PackageEvaluator> evaluator;
};

Workload MakeWorkload(ItemTable table, const std::string& profile_spec,
                      std::size_t phi) {
  Workload w;
  w.table = std::make_unique<ItemTable>(std::move(table));
  w.profile = std::make_unique<Profile>(
      std::move(Profile::Parse(profile_spec)).value());
  w.evaluator =
      std::make_unique<PackageEvaluator>(w.table.get(), w.profile.get(), phi);
  return w;
}

// A random table over `spec`'s width with a per-value null probability.
ItemTable RandomTable(std::size_t n, std::size_t m, double null_prob,
                      Rng& rng) {
  std::vector<Vec> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vec row = rng.UniformVector(m, 0.0, 1.0);
    for (double& v : row) {
      if (rng.Bernoulli(null_prob)) v = model::kNullValue;
    }
    rows.push_back(std::move(row));
  }
  return std::move(ItemTable::Create(std::move(rows))).value();
}

// Weight vector with mixed signs and occasional exact zeros (a zero weight
// deactivates its feature, exercising the active-feature plan; the all-zero
// case — now oracle-identical too — has its own dedicated tests below).
Vec RandomWeights(std::size_t m, Rng& rng) {
  Vec w = rng.UniformVector(m, -1.0, 1.0);
  for (double& v : w) {
    if (rng.Bernoulli(0.2)) v = 0.0;
  }
  bool any = false;
  for (double v : w) any = any || v != 0.0;
  if (!any) w[m - 1] = 0.5;
  return w;
}

// Full-result bit-equivalence against the exhaustive oracle.
void ExpectMatchesOracle(const SearchResult& fast, const SearchResult& slow,
                         const std::string& label) {
  ASSERT_EQ(fast.packages.size(), slow.packages.size()) << label;
  for (std::size_t i = 0; i < slow.packages.size(); ++i) {
    EXPECT_EQ(fast.packages[i].package, slow.packages[i].package)
        << label << " rank=" << i;
    EXPECT_NEAR(fast.packages[i].utility, slow.packages[i].utility, 1e-9)
        << label << " rank=" << i;
  }
}

// ---- Oracle bit-equivalence sweep ----------------------------------------

// (seed, profile spec, phi). expand_on_ties makes the search exact for every
// profile including the plateau-tie-heavy min/max ones, so the full list —
// packages, utilities, tie-order, truncation flag — must match the oracle.
class KernelOracleEquivalence
    : public ::testing::TestWithParam<std::tuple<int, const char*, int>> {};

TEST_P(KernelOracleEquivalence, BitIdenticalToNaiveEnumerator) {
  auto [seed, spec, phi] = GetParam();
  auto profile = std::move(Profile::Parse(spec)).value();
  const std::size_t m = profile.num_features();
  Rng rng(static_cast<uint64_t>(seed) * 7919 + 13);
  const double null_prob = (seed % 3 == 0) ? 0.25 : 0.0;
  auto w = MakeWorkload(RandomTable(11, m, null_prob, rng), spec,
                        static_cast<std::size_t>(phi));
  TopKPkgSearch search(w.evaluator.get());
  NaivePackageEnumerator oracle(w.evaluator.get());
  SearchScratch scratch;  // Shared across all trials of this case.
  SearchLimits exact;
  exact.expand_on_ties = true;
  for (int trial = 0; trial < 8; ++trial) {
    // Nulls × min-aggregate × negative weight included: the aggregation
    // kernel's null-aware bound (AggResolveBoundWeights) carries the
    // count-0 min contribution of exactly 0 explicitly, so the search is
    // exact here too — this sweep used to flip min-weights non-negative
    // under nulls to document the pre-kernel gap.
    Vec weights = RandomWeights(m, rng);
    const std::size_t k = 1 + static_cast<std::size_t>(rng.UniformInt(5));
    auto fast = search.Search(weights, k, exact, nullptr, &scratch);
    auto slow = oracle.Search(weights, k);
    ASSERT_TRUE(fast.ok()) << fast.status();
    ASSERT_TRUE(slow.ok()) << slow.status();
    EXPECT_FALSE(fast->truncated);
    ASSERT_EQ(fast->packages.size(), slow->packages.size())
        << "seed=" << seed << " spec=" << spec << " phi=" << phi
        << " trial=" << trial;
    for (std::size_t i = 0; i < slow->packages.size(); ++i) {
      EXPECT_EQ(fast->packages[i].package, slow->packages[i].package)
          << "seed=" << seed << " spec=" << spec << " phi=" << phi
          << " trial=" << trial << " rank=" << i;
      EXPECT_NEAR(fast->packages[i].utility, slow->packages[i].utility, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesTimesPhi, KernelOracleEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values("sum,avg", "max,min", "sum,max,min",
                                         "avg,min", "sum,sum,avg,max"),
                       ::testing::Values(1, 2, 3, 4)));

// ---- Null × min-aggregate × negative weight exactness --------------------

// The distilled shape of the pre-kernel gap: one min-aggregated feature with
// negative weight over a column holding a null. The all-null package {2}
// contributes 0 (count-0 min), which beats every real minimum under the
// negative weight — but the old τ-padded bound always folded a positive
// minimum, fell below η_lo immediately, and terminated before the null item
// was ever accessed, returning {0} instead. The null-aware bound must find
// {2}.
TEST(NullMinNegativeWeightTest, AllNullPackageIsTheTop1) {
  auto w = MakeWorkload(
      std::move(model::ItemTable::Create(
                    {{0.5}, {0.8}, {model::kNullValue}}))
          .value(),
      "min", 2);
  TopKPkgSearch search(w.evaluator.get());
  NaivePackageEnumerator oracle(w.evaluator.get());
  const Vec weights = {-0.6};
  auto fast = search.Search(weights, 1);
  auto slow = oracle.Search(weights, 1);
  ASSERT_TRUE(fast.ok()) << fast.status();
  ASSERT_TRUE(slow.ok());
  ASSERT_EQ(slow->packages[0].package, Package::Of({2}));  // Oracle sanity.
  EXPECT_DOUBLE_EQ(slow->packages[0].utility, 0.0);
  ExpectMatchesOracle(*fast, *slow, "distilled null-min-negative");
}

// Randomized sweep with the gap's ingredients forced: min-heavy profiles,
// nulls present, and every min weight negative. Previously these were the
// documented-miss cases; now they must match the oracle exactly.
class NullMinNegativeWeightSweep
    : public ::testing::TestWithParam<std::tuple<int, const char*, int>> {};

TEST_P(NullMinNegativeWeightSweep, MatchesOracleExactly) {
  auto [seed, spec, phi] = GetParam();
  auto profile = std::move(Profile::Parse(spec)).value();
  const std::size_t m = profile.num_features();
  Rng rng(static_cast<uint64_t>(seed) * 6007 + 29);
  auto w = MakeWorkload(RandomTable(10, m, /*null_prob=*/0.3, rng), spec,
                        static_cast<std::size_t>(phi));
  TopKPkgSearch search(w.evaluator.get());
  NaivePackageEnumerator oracle(w.evaluator.get());
  SearchScratch scratch;
  SearchLimits exact;
  exact.expand_on_ties = true;
  for (int trial = 0; trial < 6; ++trial) {
    Vec weights = RandomWeights(m, rng);
    for (std::size_t f = 0; f < m; ++f) {
      if (profile.op(f) == model::AggregateOp::kMin) {
        weights[f] = -std::max(0.05, std::abs(weights[f]));
      }
    }
    const std::size_t k = 1 + static_cast<std::size_t>(rng.UniformInt(5));
    auto fast = search.Search(weights, k, exact, nullptr, &scratch);
    auto slow = oracle.Search(weights, k);
    ASSERT_TRUE(fast.ok()) << fast.status();
    ASSERT_TRUE(slow.ok());
    EXPECT_FALSE(fast->truncated);
    ExpectMatchesOracle(
        *fast, *slow,
        std::string("spec=") + spec + " seed=" + std::to_string(seed) +
            " phi=" + std::to_string(phi) + " trial=" + std::to_string(trial));
  }
}

INSTANTIATE_TEST_SUITE_P(
    MinProfilesUnderNulls, NullMinNegativeWeightSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values("min", "min,min", "sum,min",
                                         "min,avg,min"),
                       ::testing::Values(1, 2, 3)));

// ---- Zero-active-weight tie-break ----------------------------------------

// With no active feature every utility is 0 and the contract is the
// deterministic tie-break: the search must return the oracle's lexicographic
// item-id order over the whole package space (it used to return the first k
// singletons).
TEST(ZeroActiveWeightTest, MatchesOracleLexicographicTieBreak) {
  auto w = MakeWorkload(
      std::move(data::GenerateUniform(7, 2, 96)).value(), "sum,avg", 3);
  TopKPkgSearch search(w.evaluator.get());
  NaivePackageEnumerator oracle(w.evaluator.get());
  const Vec zero = {0.0, 0.0};
  for (std::size_t k : {1u, 4u, 10u, 200u}) {
    auto fast = search.Search(zero, k);
    auto slow = oracle.Search(zero, k);
    ASSERT_TRUE(fast.ok()) << fast.status();
    ASSERT_TRUE(slow.ok());
    EXPECT_FALSE(fast->truncated);
    ExpectMatchesOracle(*fast, *slow, "zero-weight k=" + std::to_string(k));
  }
}

// Zero-weight features combined with null-profiled ones (both deactivate)
// and a package filter: the filtered lexicographic walk must agree with
// filtering the oracle's list.
TEST(ZeroActiveWeightTest, FilterAppliesOnTheTieBreakPath) {
  auto w = MakeWorkload(
      std::move(data::GenerateUniform(6, 2, 97)).value(), "sum,null", 3);
  TopKPkgSearch search(w.evaluator.get());
  NaivePackageEnumerator oracle(w.evaluator.get());
  TopKPkgSearch::PackageFilter only_pairs = [](const Package& p) {
    return p.size() == 2;
  };
  const Vec zero = {0.0, 0.5};  // Weight on the null-profiled feature only.
  auto fast = search.Search(zero, 5, {}, &only_pairs);
  ASSERT_TRUE(fast.ok()) << fast.status();
  auto slow = oracle.Search(zero, 1000);
  ASSERT_TRUE(slow.ok());
  std::vector<ScoredPackage> expected;
  for (const auto& sp : slow->packages) {
    if (sp.package.size() == 2 && expected.size() < 5) expected.push_back(sp);
  }
  ASSERT_EQ(fast->packages.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(fast->packages[i].package, expected[i].package) << "rank " << i;
    EXPECT_DOUBLE_EQ(fast->packages[i].utility, 0.0);
  }
}

// ---- Large-k collector ---------------------------------------------------

// k ≥ 1000 drives the bounded-heap collector deep into the regime the old
// insertion-sorted vector was quadratic in. Values are drawn from a coarse
// grid so utilities tie heavily — including at the k-th boundary, where the
// heap's displacement order must still reproduce the oracle's BetterThan
// tie-break exactly.
TEST(LargeKCollectorTest, ThousandsOfPackagesWithBoundaryTies) {
  Rng rng(4321);
  std::vector<Vec> rows;
  for (int i = 0; i < 15; ++i) {
    // 3 distinct values per feature → massive utility plateaus.
    rows.push_back(Vec{0.25 * (1 + rng.UniformInt(3)),
                       0.25 * (1 + rng.UniformInt(3))});
  }
  auto w = MakeWorkload(std::move(model::ItemTable::Create(rows)).value(),
                        "sum,min", 4);
  TopKPkgSearch search(w.evaluator.get());
  NaivePackageEnumerator oracle(w.evaluator.get());
  SearchScratch scratch;
  SearchLimits exact;
  exact.expand_on_ties = true;
  for (const Vec& weights :
       {Vec{0.7, 0.3}, Vec{0.4, -0.8}, Vec{-0.2, 0.9}}) {
    for (std::size_t k : {1000u, 1940u, 5000u}) {
      auto fast = search.Search(weights, k, exact, nullptr, &scratch);
      auto slow = oracle.Search(weights, k);
      ASSERT_TRUE(fast.ok()) << fast.status();
      ASSERT_TRUE(slow.ok());
      EXPECT_FALSE(fast->truncated);
      // n=15, phi=4 → 1940 packages total; k beyond that returns them all.
      EXPECT_EQ(slow->packages.size(), std::min<std::size_t>(k, 1940));
      ExpectMatchesOracle(*fast, *slow, "large-k k=" + std::to_string(k));
    }
  }
}

// ---- Scratch-reuse regression --------------------------------------------

// Two SearchResults must agree exactly: same packages, bitwise-equal
// utilities, same truncation flag and work counters.
void ExpectSameResult(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.items_accessed, b.items_accessed);
  EXPECT_EQ(a.packages_generated, b.packages_generated);
  EXPECT_EQ(a.expansions, b.expansions);
  ASSERT_EQ(a.packages.size(), b.packages.size());
  for (std::size_t i = 0; i < a.packages.size(); ++i) {
    EXPECT_EQ(a.packages[i].package, b.packages[i].package) << "rank " << i;
    EXPECT_EQ(a.packages[i].utility, b.packages[i].utility) << "rank " << i;
  }
}

// One scratch serves interleaved searches over two evaluators of different
// dimensionality/φ, different weights, k, and limits — including truncating
// limits that exercise the max_queue overflow and max_expansions paths.
// Every call must match the same call against a fresh scratch.
TEST(SearchScratchReuseTest, HeterogeneousCallsLeakNoState) {
  auto small = MakeWorkload(
      std::move(data::GenerateUniform(10, 2, 91)).value(), "sum,avg", 3);
  auto large = MakeWorkload(
      std::move(data::GenerateAntiCorrelated(60, 4, 92)).value(),
      "sum,max,min,avg", 4);
  TopKPkgSearch small_search(small.evaluator.get());
  TopKPkgSearch large_search(large.evaluator.get());

  SearchLimits exact;
  SearchLimits ties;
  ties.expand_on_ties = true;
  SearchLimits tiny_expansions;
  tiny_expansions.max_expansions = 20;
  SearchLimits tiny_queue;
  tiny_queue.max_queue = 3;
  SearchLimits tiny_access;
  tiny_access.max_items_accessed = 7;

  struct Call {
    const TopKPkgSearch* search;
    std::size_t m;
    std::size_t k;
    const SearchLimits* limits;
  };
  const std::vector<Call> calls = {
      {&small_search, 2, 2, &exact},   {&large_search, 4, 5, &tiny_queue},
      {&small_search, 2, 4, &ties},    {&large_search, 4, 1, &tiny_expansions},
      {&large_search, 4, 3, &exact},   {&small_search, 2, 1, &tiny_access},
      {&large_search, 4, 2, &ties},    {&small_search, 2, 3, &tiny_queue},
  };

  Rng rng(4242);
  SearchScratch shared;
  for (int round = 0; round < 3; ++round) {
    for (const Call& call : calls) {
      const Vec weights = RandomWeights(call.m, rng);
      auto reused =
          call.search->Search(weights, call.k, *call.limits, nullptr, &shared);
      SearchScratch fresh;
      auto clean =
          call.search->Search(weights, call.k, *call.limits, nullptr, &fresh);
      ASSERT_TRUE(reused.ok()) << reused.status();
      ASSERT_TRUE(clean.ok()) << clean.status();
      ExpectSameResult(*reused, *clean);
    }
  }
}

// The thread_local default scratch must behave exactly like an explicit one.
TEST(SearchScratchReuseTest, DefaultThreadLocalScratchMatchesExplicit) {
  auto w = MakeWorkload(
      std::move(data::GenerateUniform(30, 3, 93)).value(), "sum,avg,min", 3);
  TopKPkgSearch search(w.evaluator.get());
  Rng rng(777);
  for (int trial = 0; trial < 5; ++trial) {
    const Vec weights = RandomWeights(3, rng);
    auto via_tls = search.Search(weights, 4);
    SearchScratch fresh;
    auto via_fresh = search.Search(weights, 4, {}, nullptr, &fresh);
    ASSERT_TRUE(via_tls.ok());
    ASSERT_TRUE(via_fresh.ok());
    ExpectSameResult(*via_tls, *via_fresh);
  }
}

// Filters still apply under the skip-before-materialize collector: the
// filtered search through a reused scratch matches a fresh-scratch run and
// never returns a non-passing package.
TEST(SearchScratchReuseTest, FilterWithReusedScratch) {
  auto w = MakeWorkload(
      std::move(data::GenerateUniform(12, 2, 94)).value(), "sum,avg", 3);
  TopKPkgSearch search(w.evaluator.get());
  TopKPkgSearch::PackageFilter only_pairs = [](const Package& p) {
    return p.size() == 2;
  };
  Rng rng(555);
  SearchScratch shared;
  for (int trial = 0; trial < 5; ++trial) {
    const Vec weights = RandomWeights(2, rng);
    auto filtered = search.Search(weights, 3, {}, &only_pairs, &shared);
    SearchScratch fresh;
    auto clean = search.Search(weights, 3, {}, &only_pairs, &fresh);
    ASSERT_TRUE(filtered.ok());
    ASSERT_TRUE(clean.ok());
    ExpectSameResult(*filtered, *clean);
    for (const auto& sp : filtered->packages) {
      EXPECT_EQ(sp.package.size(), 2u);
    }
  }
}

// A PackageFilter that itself runs a Search() with the default scratch must
// not corrupt the outer call's live arena: the nested call detects the busy
// thread_local scratch and falls back to a private one.
TEST(SearchScratchReuseTest, ReentrantSearchThroughFilterIsSafe) {
  auto w = MakeWorkload(
      std::move(data::GenerateUniform(15, 2, 95)).value(), "sum,avg", 3);
  TopKPkgSearch search(w.evaluator.get());
  const Vec inner_w = {0.3, 0.4};
  // Keep packages whose items all appear in the nested search's top list —
  // contrived, but it exercises a full Search inside the expansion loop.
  TopKPkgSearch::PackageFilter nested = [&](const Package& p) {
    auto inner = search.Search(inner_w, 6);
    if (!inner.ok()) return false;
    for (model::ItemId id : p.items()) {
      bool found = false;
      for (const auto& sp : inner->packages) {
        if (sp.package.Contains(id)) found = true;
      }
      if (!found) return false;
    }
    return true;
  };
  Rng rng(909);
  for (int trial = 0; trial < 3; ++trial) {
    const Vec weights = RandomWeights(2, rng);
    auto reentrant = search.Search(weights, 3, {}, &nested);
    SearchScratch outer_fresh;
    auto isolated = search.Search(weights, 3, {}, &nested, &outer_fresh);
    ASSERT_TRUE(reentrant.ok());
    ASSERT_TRUE(isolated.ok());
    ExpectSameResult(*reentrant, *isolated);
  }
}

}  // namespace
}  // namespace topkpkg::topk
