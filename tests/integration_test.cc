// End-to-end pipeline sweeps: dataset → feedback → constrained sampling →
// per-sample package search → semantics aggregation, across every dataset
// family, sampler and ranking semantics. These are the "does the whole
// system hang together" tests complementing the per-module suites.

#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "topkpkg/data/generators.h"
#include "topkpkg/data/nba_like.h"
#include "topkpkg/pref/preference.h"
#include "topkpkg/prob/gaussian_mixture.h"
#include "topkpkg/ranking/rankers.h"
#include "topkpkg/recsys/recommender.h"
#include "topkpkg/sampling/importance_sampler.h"
#include "topkpkg/sampling/mcmc_sampler.h"
#include "topkpkg/sampling/rejection_sampler.h"

namespace topkpkg {
namespace {

struct Pipeline {
  std::unique_ptr<model::ItemTable> table;
  std::unique_ptr<model::Profile> profile;
  std::unique_ptr<model::PackageEvaluator> evaluator;
  std::unique_ptr<prob::GaussianMixture> prior;
  std::vector<pref::Preference> feedback;
};

Pipeline MakePipeline(data::SyntheticKind kind, uint64_t seed) {
  Pipeline p;
  p.table = std::make_unique<model::ItemTable>(
      std::move(data::GenerateSynthetic(kind, 300, 3, seed)).value());
  p.profile = std::make_unique<model::Profile>(
      std::move(model::Profile::Parse("sum,avg,max")).value());
  p.evaluator = std::make_unique<model::PackageEvaluator>(p.table.get(),
                                                          p.profile.get(), 3);
  Rng rng(seed + 1);
  p.prior = std::make_unique<prob::GaussianMixture>(
      prob::GaussianMixture::Random(3, 2, 0.5, rng));
  Vec hidden = rng.UniformVector(3, -1.0, 1.0);
  p.feedback =
      pref::GenerateConsistentPreferences(*p.evaluator, hidden, 8, 3, rng);
  return p;
}

Result<std::vector<sampling::WeightedSample>> DrawVia(
    recsys::SamplerKind kind, const Pipeline& p,
    const sampling::ConstraintChecker& checker, std::size_t n, Rng& rng) {
  switch (kind) {
    case recsys::SamplerKind::kRejection:
      return sampling::RejectionSampler(p.prior.get(), &checker).Draw(n, rng);
    case recsys::SamplerKind::kImportance: {
      TOPKPKG_ASSIGN_OR_RETURN(
          sampling::ImportanceSampler s,
          sampling::ImportanceSampler::Create(p.prior.get(), &checker));
      return s.Draw(n, rng);
    }
    case recsys::SamplerKind::kMcmc:
      return sampling::McmcSampler(p.prior.get(), &checker).Draw(n, rng);
  }
  return Status::InvalidArgument("kind");
}

class PipelineSweep
    : public ::testing::TestWithParam<
          std::tuple<data::SyntheticKind, recsys::SamplerKind,
                     ranking::Semantics>> {};

TEST_P(PipelineSweep, ProducesValidRankedPackages) {
  auto [kind, sampler, semantics] = GetParam();
  Pipeline p = MakePipeline(kind, 11);
  sampling::ConstraintChecker checker(p.feedback);
  Rng rng(12);
  auto samples = DrawVia(sampler, p, checker, 80, rng);
  ASSERT_TRUE(samples.ok()) << samples.status();
  for (const auto& s : *samples) {
    ASSERT_TRUE(checker.IsValid(s.w));
  }

  ranking::PackageRanker ranker(p.evaluator.get());
  ranking::RankingOptions opts;
  opts.k = 4;
  opts.sigma = 4;
  auto ranked = ranker.Rank(*samples, semantics, opts);
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  ASSERT_FALSE(ranked->packages.empty());
  for (const auto& rp : ranked->packages) {
    EXPECT_GE(rp.package.size(), 1u);
    EXPECT_LE(rp.package.size(), 3u);
  }
  // Scores are ordered.
  for (std::size_t i = 1; i < ranked->packages.size(); ++i) {
    EXPECT_GE(ranked->packages[i - 1].score, ranked->packages[i].score);
  }
}

TEST_P(PipelineSweep, DeterministicAcrossRuns) {
  auto [kind, sampler, semantics] = GetParam();
  auto run = [&]() {
    Pipeline p = MakePipeline(kind, 21);
    sampling::ConstraintChecker checker(p.feedback);
    Rng rng(22);
    auto samples = DrawVia(sampler, p, checker, 40, rng);
    EXPECT_TRUE(samples.ok());
    ranking::PackageRanker ranker(p.evaluator.get());
    ranking::RankingOptions opts;
    opts.k = 3;
    opts.sigma = 3;
    auto ranked = ranker.Rank(*samples, semantics, opts);
    EXPECT_TRUE(ranked.ok());
    std::vector<std::string> keys;
    for (const auto& rp : ranked->packages) keys.push_back(rp.package.Key());
    return keys;
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, PipelineSweep,
    ::testing::Combine(
        ::testing::Values(data::SyntheticKind::kUniform,
                          data::SyntheticKind::kPowerLaw,
                          data::SyntheticKind::kCorrelated,
                          data::SyntheticKind::kAntiCorrelated),
        ::testing::Values(recsys::SamplerKind::kRejection,
                          recsys::SamplerKind::kImportance,
                          recsys::SamplerKind::kMcmc),
        ::testing::Values(ranking::Semantics::kExp, ranking::Semantics::kTkp,
                          ranking::Semantics::kMpo)));

TEST(IntegrationTest, NbaPipelineEndToEnd) {
  auto table = std::move(data::GenerateNbaLikeExperiment(5, 3)).value();
  auto profile = std::move(model::Profile::Parse("sum,sum,avg,sum,avg"))
                     .value();
  model::PackageEvaluator evaluator(&table, &profile, 4);
  Rng rng(4);
  prob::GaussianMixture prior = prob::GaussianMixture::Random(5, 1, 0.5, rng);
  Vec hidden = rng.UniformVector(5, -1.0, 1.0);
  auto feedback =
      pref::GenerateConsistentPreferences(evaluator, hidden, 10, 4, rng);
  sampling::ConstraintChecker checker(feedback);
  sampling::McmcSampler sampler(&prior, &checker);
  auto samples = sampler.Draw(60, rng);
  ASSERT_TRUE(samples.ok()) << samples.status();
  ranking::PackageRanker ranker(&evaluator);
  ranking::RankingOptions opts;
  opts.k = 5;
  opts.sigma = 5;
  opts.limits.max_items_accessed = 800;
  opts.limits.max_queue = 500;
  auto ranked = ranker.Rank(*samples, ranking::Semantics::kExp, opts);
  ASSERT_TRUE(ranked.ok()) << ranked.status();
  EXPECT_FALSE(ranked->packages.empty());
}

// The elicitation loop must improve (or at least not regress) the true
// utility of the top recommendation relative to round one, across several
// hidden users.
TEST(IntegrationTest, ElicitationImprovesTrueUtility) {
  auto table = std::move(data::GenerateUniform(120, 3, 31)).value();
  auto profile = std::move(model::Profile::Parse("sum,avg,min")).value();
  model::PackageEvaluator evaluator(&table, &profile, 3);
  Rng prior_rng(32);
  prob::GaussianMixture prior =
      prob::GaussianMixture::Random(3, 2, 0.5, prior_rng);

  int improved = 0;
  const int kUsers = 5;
  for (int u = 0; u < kUsers; ++u) {
    Rng rng(100 + static_cast<uint64_t>(u));
    Vec hidden = rng.UniformVector(3, -1.0, 1.0);
    recsys::SimulatedUser user(hidden);
    recsys::RecommenderOptions opts;
    opts.num_recommended = 3;
    opts.num_random = 3;
    opts.num_samples = 80;
    opts.ranking.k = 3;
    opts.ranking.sigma = 3;
    recsys::PackageRecommender rec(&evaluator, &prior, opts,
                                   200 + static_cast<uint64_t>(u));
    auto first = rec.RunRound(user);
    ASSERT_TRUE(first.ok()) << first.status();
    double before = first->top_k.empty()
                        ? -1.0
                        : evaluator.Utility(first->top_k[0], hidden);
    for (int round = 0; round < 6; ++round) {
      ASSERT_TRUE(rec.RunRound(user).ok());
    }
    double after = rec.current_top_k().empty()
                       ? -1.0
                       : evaluator.Utility(rec.current_top_k()[0], hidden);
    if (after >= before - 1e-9) ++improved;
  }
  EXPECT_GE(improved, kUsers - 1)
      << "elicitation should (weakly) improve the recommendation for almost "
         "every user";
}

}  // namespace
}  // namespace topkpkg
