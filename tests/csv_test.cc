#include "topkpkg/data/csv.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "topkpkg/data/generators.h"

namespace topkpkg::data {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(CsvTest, RoundTripPreservesValuesAndNames) {
  auto t = model::ItemTable::Create(
      {{1.5, model::kNullValue}, {0.0, 2.25}}, {"cost", "rating"});
  ASSERT_TRUE(t.ok());
  std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(SaveCsv(*t, path).ok());
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_items(), 2u);
  EXPECT_EQ(loaded->feature_name(0), "cost");
  EXPECT_EQ(loaded->feature_name(1), "rating");
  EXPECT_DOUBLE_EQ(loaded->value(0, 0), 1.5);
  EXPECT_TRUE(loaded->is_null(0, 1));
  EXPECT_DOUBLE_EQ(loaded->value(1, 1), 2.25);
  std::remove(path.c_str());
}

TEST(CsvTest, RoundTripLargeGeneratedTable) {
  auto t = GenerateUniform(500, 6, 3);
  ASSERT_TRUE(t.ok());
  std::string path = TempPath("large.csv");
  ASSERT_TRUE(SaveCsv(*t, path).ok());
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_items(), 500u);
  for (std::size_t i = 0; i < 500; i += 37) {
    for (std::size_t f = 0; f < 6; ++f) {
      EXPECT_DOUBLE_EQ(loaded->value(static_cast<model::ItemId>(i), f),
                       t->value(static_cast<model::ItemId>(i), f));
    }
  }
  std::remove(path.c_str());
}

TEST(CsvTest, LoadMissingFileFails) {
  auto result = LoadCsv("/nonexistent/path/file.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, LoadRejectsGarbageNumbers) {
  std::string path = TempPath("garbage.csv");
  {
    std::ofstream out(path);
    out << "a,b\n1.0,oops\n";
  }
  auto result = LoadCsv(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CsvTest, LoadRejectsEmptyFile) {
  std::string path = TempPath("empty.csv");
  { std::ofstream out(path); }
  EXPECT_FALSE(LoadCsv(path).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, TrailingNullCellsParsed) {
  std::string path = TempPath("trailing.csv");
  {
    std::ofstream out(path);
    out << "a,b,c\n1.0,,\n";
  }
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->is_null(0, 1));
  EXPECT_TRUE(loaded->is_null(0, 2));
  std::remove(path.c_str());
}

TEST(CsvTest, SaveToUnwritablePathFails) {
  auto t = model::ItemTable::Create({{1.0}});
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(SaveCsv(*t, "/nonexistent-dir/x.csv").ok());
}

}  // namespace
}  // namespace topkpkg::data
