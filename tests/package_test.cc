#include "topkpkg/model/package.h"

#include <memory>

#include <gtest/gtest.h>

#include "topkpkg/model/profile.h"

namespace topkpkg::model {
namespace {

TEST(PackageTest, OfSortsAndDedups) {
  Package p = Package::Of({3, 1, 2, 1});
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.items(), (std::vector<ItemId>{1, 2, 3}));
  EXPECT_EQ(p.Key(), "1,2,3");
}

TEST(PackageTest, ContainsAndWith) {
  Package p = Package::Of({5, 9});
  EXPECT_TRUE(p.Contains(5));
  EXPECT_FALSE(p.Contains(7));
  Package q = p.With(7);
  EXPECT_TRUE(q.Contains(7));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(p.size(), 2u);  // Original untouched.
  EXPECT_EQ(p.With(5), p);  // Adding an existing item is a no-op.
}

TEST(PackageTest, OrderingAndEquality) {
  EXPECT_EQ(Package::Of({1, 2}), Package::Of({2, 1}));
  EXPECT_LT(Package::Of({1}), Package::Of({1, 2}));
  EXPECT_LT(Package::Of({1, 2}), Package::Of({2}));
}

TEST(PackageTest, HashConsistentWithEquality) {
  PackageHash h;
  EXPECT_EQ(h(Package::Of({4, 2})), h(Package::Of({2, 4})));
}

class Fig1Fixture : public ::testing::Test {
 protected:
  // The running example of Figures 1-2: items t1=(0.6,0.2), t2=(0.4,0.4),
  // t3=(0.2,0.4); profile (sum1, avg2); φ = 2.
  void SetUp() override {
    table_ = std::make_unique<ItemTable>(std::move(
        ItemTable::Create({{0.6, 0.2}, {0.4, 0.4}, {0.2, 0.4}})).value());
    profile_ = std::make_unique<Profile>(
        std::move(Profile::Parse("sum,avg")).value());
    evaluator_ = std::make_unique<PackageEvaluator>(table_.get(),
                                                    profile_.get(), 2);
  }

  std::unique_ptr<ItemTable> table_;
  std::unique_ptr<Profile> profile_;
  std::unique_ptr<PackageEvaluator> evaluator_;
};

TEST_F(Fig1Fixture, NormalizedFeatureVectorsMatchExample1) {
  // p1 = {t1}: sum=0.6 → 0.6/1.0; avg=0.2 → 0.2/0.4 = 0.5.
  Vec p1 = evaluator_->FeatureVector(Package::Of({0}));
  EXPECT_NEAR(p1[0], 0.6, 1e-12);
  EXPECT_NEAR(p1[1], 0.5, 1e-12);
  // p4 = {t1,t2}: sum=1.0; avg=0.3 → 0.75.
  Vec p4 = evaluator_->FeatureVector(Package::Of({0, 1}));
  EXPECT_NEAR(p4[0], 1.0, 1e-12);
  EXPECT_NEAR(p4[1], 0.75, 1e-12);
}

TEST_F(Fig1Fixture, UtilitiesMatchFigure2cUnderW1) {
  // w1 = (0.5, 0.1); utilities row 1 of Fig. 2(c).
  Vec w1 = {0.5, 0.1};
  EXPECT_NEAR(evaluator_->Utility(Package::Of({0}), w1), 0.35, 1e-12);
  EXPECT_NEAR(evaluator_->Utility(Package::Of({1}), w1), 0.30, 1e-12);
  EXPECT_NEAR(evaluator_->Utility(Package::Of({2}), w1), 0.20, 1e-12);
  EXPECT_NEAR(evaluator_->Utility(Package::Of({0, 1}), w1), 0.575, 1e-12);
  EXPECT_NEAR(evaluator_->Utility(Package::Of({1, 2}), w1), 0.40, 1e-12);
  EXPECT_NEAR(evaluator_->Utility(Package::Of({0, 2}), w1), 0.475, 1e-12);
}

TEST_F(Fig1Fixture, UtilitiesMatchFigure2cUnderW2AndW3) {
  Vec w2 = {0.1, 0.5};
  EXPECT_NEAR(evaluator_->Utility(Package::Of({0}), w2), 0.31, 1e-12);
  EXPECT_NEAR(evaluator_->Utility(Package::Of({1}), w2), 0.54, 1e-12);
  EXPECT_NEAR(evaluator_->Utility(Package::Of({1, 2}), w2), 0.56, 1e-12);
  Vec w3 = {0.1, 0.1};
  EXPECT_NEAR(evaluator_->Utility(Package::Of({0}), w3), 0.11, 1e-12);
  EXPECT_NEAR(evaluator_->Utility(Package::Of({0, 1}), w3), 0.175, 1e-12);
}

TEST(AggregateStateTest, IncrementalMatchesBatch) {
  auto table = std::move(
      ItemTable::Create({{1.0, 4.0}, {3.0, 2.0}, {2.0, kNullValue}})).value();
  auto profile = std::move(Profile::Parse("sum,min")).value();
  PackageEvaluator ev(&table, &profile, 3);
  AggregateState state = ev.NewState();
  state.Add(table.Row(0));
  state.Add(table.Row(2));
  Vec direct = ev.FeatureVector(Package::Of({0, 2}));
  Vec incremental = state.Normalized();
  ASSERT_EQ(direct.size(), incremental.size());
  for (std::size_t f = 0; f < direct.size(); ++f) {
    EXPECT_NEAR(direct[f], incremental[f], 1e-12);
  }
}

TEST(AggregateStateTest, AvgDividesByPackageSizePerDefinition1) {
  // Definition 1: avg divides the non-null sum by |p|, not by the non-null
  // count. {v=6, null} → avg = 6/2 = 3.
  auto table =
      std::move(ItemTable::Create({{6.0}, {kNullValue}, {6.0}})).value();
  auto profile = std::move(Profile::Parse("avg")).value();
  PackageEvaluator ev(&table, &profile, 2);
  // Normalizer: max item value = 6 → scale 6.
  Vec v = ev.FeatureVector(Package::Of({0, 1}));
  EXPECT_NEAR(v[0], 3.0 / 6.0, 1e-12);
}

TEST(AggregateStateTest, MinMaxSkipNulls) {
  auto table = std::move(
      ItemTable::Create({{2.0, 2.0}, {kNullValue, kNullValue}, {4.0, 4.0}}))
      .value();
  auto profile = std::move(Profile::Parse("min,max")).value();
  PackageEvaluator ev(&table, &profile, 3);
  Vec v = ev.FeatureVector(Package::Of({0, 1, 2}));
  EXPECT_NEAR(v[0], 2.0 / 4.0, 1e-12);  // min skips the null.
  EXPECT_NEAR(v[1], 4.0 / 4.0, 1e-12);
}

TEST(AggregateStateTest, AllNullFeatureEvaluatesToZero) {
  auto table =
      std::move(ItemTable::Create({{kNullValue, 1.0}, {kNullValue, 2.0}}))
          .value();
  auto profile = std::move(Profile::Parse("min,sum")).value();
  PackageEvaluator ev(&table, &profile, 2);
  Vec v = ev.FeatureVector(Package::Of({0, 1}));
  EXPECT_DOUBLE_EQ(v[0], 0.0);
}

TEST(AggregateStateTest, NullProfileFeatureIgnored) {
  auto table = std::move(ItemTable::Create({{9.0, 1.0}})).value();
  auto profile = std::move(Profile::Parse("null,sum")).value();
  PackageEvaluator ev(&table, &profile, 1);
  Vec v = ev.FeatureVector(Package::Of({0}));
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_NEAR(v[1], 1.0, 1e-12);
}

}  // namespace
}  // namespace topkpkg::model
