// NBA dream-team assembly: the paper's evaluation domain as an application.
// Build 5-player packages from the NBA-like career table, where a scout's
// taste trades off total scoring, playmaking, rebounding and foul trouble.
// The scout never states weights: the system elicits them from clicks.
//
// Build & run:  ./build/examples/nba_dream_team

#include <iostream>

#include "topkpkg/topkpkg.h"

using namespace topkpkg;  // NOLINT(build/namespaces) — example binary.

int main() {
  // Features: points (sum, want high), assists (sum, high), rebounds (sum,
  // high), fouls (sum, want LOW), fg_pct (avg, high).
  auto full = data::GenerateNbaLike();
  if (!full.ok()) {
    std::cerr << full.status() << "\n";
    return 1;
  }
  // Column indices in the synthesizer: points=2, rebounds=3, assists=4,
  // fouls=8, fg_pct=12.
  model::ItemTable table = full->SelectFeatures({2, 3, 4, 8, 12});
  auto profile = std::move(model::Profile::Parse("sum,sum,sum,sum,avg"))
                     .value();
  model::PackageEvaluator evaluator(&table, &profile, /*phi=*/5);

  // The scout's hidden taste: loves scoring and playmaking, hates fouls.
  recsys::SimulatedUser scout({0.8, 0.4, 0.6, -0.7, 0.3});

  Rng rng(2024);
  prob::GaussianMixture prior =
      prob::GaussianMixture::Random(5, 2, 0.5, rng);

  recsys::RecommenderOptions opts;
  opts.num_recommended = 5;
  opts.num_random = 5;
  opts.num_samples = 200;
  opts.ranking.k = 5;
  opts.ranking.sigma = 5;
  // Bound the per-sample package search: interactive latency beats
  // exactness during elicitation.
  opts.ranking.limits.max_expansions = 200000;
  opts.ranking.limits.max_queue = 2000;
  opts.ranking.limits.max_items_accessed = 1200;
  recsys::PackageRecommender rec(&evaluator, &prior, opts, /*seed=*/99);

  std::cout << "Eliciting the scout's preferences";
  auto clicks = rec.RunUntilConverged(scout, /*stable_rounds=*/2,
                                      /*max_rounds=*/15);
  if (!clicks.ok()) {
    std::cerr << "\n" << clicks.status() << "\n";
    return 1;
  }
  std::cout << " — converged after " << *clicks << " clicks.\n\n";

  std::cout << "Recommended 5-player rosters (player ids + career lines):\n";
  int rank = 1;
  for (const auto& roster : rec.current_top_k()) {
    std::cout << "Roster " << rank++ << " (true utility "
              << scout.TrueUtility(evaluator.FeatureVector(roster)) << "):\n";
    for (model::ItemId player : roster.items()) {
      std::cout << "  player#" << player
                << "  pts=" << static_cast<long>(table.value(player, 0))
                << "  reb=" << static_cast<long>(table.value(player, 1))
                << "  ast=" << static_cast<long>(table.value(player, 2))
                << "  fouls=" << static_cast<long>(table.value(player, 3))
                << "  fg%=" << table.value(player, 4) << "\n";
    }
    if (rank > 3) break;  // Show the top three rosters.
  }
  return 0;
}
