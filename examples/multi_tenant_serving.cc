// Multi-tenant serving: one SessionManager hosts a small fleet of users
// whose elicitation sessions share a thread pool and a durable store. The
// hydrated-LRU capacity is deliberately tiny (2 resident sessions for 6
// users), so most requests transparently restore their session from disk
// and evict a neighbor — the point of the example is that callers never
// notice: they submit requests through handles and await typed futures.
//
// Build & run:  ./build/example_multi_tenant_serving [store-dir]
// (default store dir: /tmp/topkpkg_multi_tenant.tkps; the segment
// directory is left behind so `./build/store_fsck <dir>` can inspect it.)
//
// Observability hooks (both optional, both environment-driven):
//   TOPKPKG_METRICS_OUT=<file>  write one Prometheus-text metrics snapshot
//                               after the run (inspect with metrics_dump).
//   TOPKPKG_TRACE_OUT=<file>    trace every request (sample_every=1) and
//                               export the spans as JSONL.

#include <cstdlib>
#include <filesystem>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "topkpkg/topkpkg.h"

using namespace topkpkg;  // NOLINT(build/namespaces) — example binary.

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/topkpkg_multi_tenant.tkps";
  std::filesystem::remove_all(path);

  auto table = std::move(data::GenerateUniform(60, 3, 7)).value();
  auto profile = std::move(model::Profile::Parse("sum,avg,min")).value();
  model::PackageEvaluator evaluator(&table, &profile, /*phi=*/3);
  Rng prior_rng(8);
  prob::GaussianMixture prior =
      prob::GaussianMixture::Random(3, 2, 0.5, prior_rng);

  auto store = storage::SessionStore::Open(path);
  if (!store.ok()) {
    std::cerr << store.status() << "\n";
    return 1;
  }

  serving::SessionManagerOptions opts;
  opts.recommender.num_samples = 120;
  opts.max_hydrated_sessions = 2;  // 6 tenants thrash through 2 slots.
  const char* trace_out = std::getenv("TOPKPKG_TRACE_OUT");
  if (trace_out != nullptr && trace_out[0] != '\0') {
    opts.trace_sample_every = 1;  // Tiny run: trace every request.
    opts.trace_jsonl_path = trace_out;
  }
  auto manager = serving::SessionManager::Create(&evaluator, &prior, &*store,
                                                 opts);
  if (!manager.ok()) {
    std::cerr << manager.status() << "\n";
    return 1;
  }

  // Six tenants with different (hidden) tastes.
  const std::vector<Vec> tastes = {
      {0.8, 0.4, -0.2}, {-0.3, 0.9, 0.1}, {0.1, -0.6, 0.7},
      {0.5, 0.5, 0.5},  {-0.7, 0.2, 0.4}, {0.9, -0.1, -0.3}};
  std::vector<recsys::SimulatedUser> users;
  std::vector<serving::SessionHandle> handles;
  for (std::size_t u = 0; u < tastes.size(); ++u) {
    users.emplace_back(tastes[u]);
    auto handle = (*manager)->StartSession(
        static_cast<serving::SessionId>(u + 1), /*seed=*/100 + u);
    if (!handle.ok()) {
      std::cerr << handle.status() << "\n";
      return 1;
    }
    handles.push_back(*handle);
  }

  // Three elicitation rounds for everyone. Each wave is submitted for all
  // six tenants before any future is awaited: distinct sessions run
  // concurrently, while each tenant's own rounds stay strictly ordered.
  for (int round = 1; round <= 3; ++round) {
    std::vector<std::future<Result<recsys::RoundLog>>> futures;
    for (std::size_t u = 0; u < handles.size(); ++u) {
      futures.push_back(handles[u].Feedback(&users[u]));
    }
    for (std::size_t u = 0; u < futures.size(); ++u) {
      auto log = futures[u].get();
      if (!log.ok()) {
        std::cerr << "tenant " << (u + 1) << ": " << log.status() << "\n";
        return 1;
      }
      if (u == 0) {
        std::cout << "round " << round << ": tenant 1 top package {"
                  << (log->top_k.empty() ? std::string("-")
                                         : log->top_k[0].Key())
                  << "}\n";
      }
    }
  }

  // A GetTopK hydrates the (likely cold) session and snapshots its state.
  for (std::size_t u = 0; u < handles.size(); ++u) {
    auto snap = handles[u].GetTopK().get();
    if (!snap.ok()) {
      std::cerr << snap.status() << "\n";
      return 1;
    }
    std::cout << "tenant " << (u + 1) << ": " << snap->rounds_served
              << " rounds, top package {"
              << (snap->top_k.empty() ? std::string("-")
                                      : snap->top_k[0].Key())
              << "}\n";
  }

  const serving::SessionManager::Stats stats = (*manager)->stats();
  std::cout << "served " << stats.completed << " requests for "
            << stats.sessions << " tenants through "
            << opts.max_hydrated_sessions << " hydrated slots ("
            << stats.hydrations << " hydrations, " << stats.evictions
            << " evictions, " << stats.rejected << " rejected)\n";

  // Ending a session checkpoints it; the manager's destructor does the same
  // for whatever is still resident, so every tenant survives the shutdown.
  if (Status st = handles[0].End().get(); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  manager->reset();

  // Snapshot the process-wide registry after the manager drained: the dump
  // holds live serving, storage, search, and sampling series from this run.
  const char* metrics_out = std::getenv("TOPKPKG_METRICS_OUT");
  if (metrics_out != nullptr && metrics_out[0] != '\0') {
    if (Status st = obs::MetricsRegistry::Global().DumpToFile(metrics_out);
        !st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    std::cout << "metrics snapshot written to " << metrics_out << "\n";
  }
  if (trace_out != nullptr && trace_out[0] != '\0') {
    std::cout << "request traces written to " << trace_out << "\n";
  }
  std::cout << "store left at " << path << " — inspect with store_fsck\n";
  return 0;
}
