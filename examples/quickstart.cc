// Quickstart: the smallest end-to-end tour of the library.
//   1. Define items with features and an aggregate profile.
//   2. Find the top-k packages for a known utility weight vector.
//   3. Model weight uncertainty with a Gaussian-mixture prior, add one
//      piece of click feedback, and re-rank under the EXP semantics.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "topkpkg/topkpkg.h"

using namespace topkpkg;  // NOLINT(build/namespaces) — example binary.

int main() {
  // 1. Six books: price (we want the total low) and rating (average high).
  auto table = std::move(model::ItemTable::Create(
      {
          {12.0, 4.8},  // 0: acclaimed novel
          {30.0, 4.9},  // 1: hardcover bestseller
          {8.0, 3.9},   // 2: paperback thriller
          {15.0, 4.5},  // 3: popular science
          {22.0, 4.7},  // 4: cookbook
          {5.0, 2.8},   // 5: bargain-bin filler
      },
      {"price", "rating"})).value();
  auto profile = std::move(model::Profile::Parse("sum,avg")).value();
  // Packages of up to 3 books.
  model::PackageEvaluator evaluator(&table, &profile, /*phi=*/3);

  // 2. A user who dislikes total cost (-0.6) and loves quality (+0.8).
  topk::TopKPkgSearch search(&evaluator);
  Vec weights = {-0.6, 0.8};
  auto top = search.Search(weights, /*k=*/3);
  if (!top.ok()) {
    std::cerr << top.status() << "\n";
    return 1;
  }
  std::cout << "Top-3 packages for known weights (price -0.6, rating +0.8):\n";
  for (const auto& sp : top->packages) {
    std::cout << "  {" << sp.package.Key() << "}  utility "
              << sp.utility << "\n";
  }

  // 3. In reality the weights are unknown. Start from a mixture prior,
  //    record that the user clicked package {0} over {1,2}, and rank by
  //    expected utility over constrained posterior samples.
  Rng rng(7);
  prob::GaussianMixture prior = prob::GaussianMixture::Random(2, 2, 0.5, rng);

  pref::PreferenceSet feedback;
  model::Package clicked = model::Package::Of({0});
  model::Package passed = model::Package::Of({1, 2});
  Status st = feedback.Add(evaluator.FeatureVector(clicked),
                           evaluator.FeatureVector(passed), clicked.Key(),
                           passed.Key());
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }

  sampling::ConstraintChecker checker =
      sampling::ConstraintChecker::FromReduced(feedback);
  sampling::McmcSampler sampler(&prior, &checker);
  auto samples = sampler.Draw(500, rng);
  if (!samples.ok()) {
    std::cerr << samples.status() << "\n";
    return 1;
  }

  ranking::PackageRanker ranker(&evaluator);
  ranking::RankingOptions opts;
  opts.k = 3;
  auto ranked = ranker.Rank(*samples, ranking::Semantics::kExp, opts);
  if (!ranked.ok()) {
    std::cerr << ranked.status() << "\n";
    return 1;
  }
  std::cout << "\nTop-3 packages by expected utility after one click:\n";
  for (const auto& rp : ranked->packages) {
    std::cout << "  {" << rp.package.Key() << "}  E[utility] ~ " << rp.score
              << "\n";
  }
  return 0;
}
