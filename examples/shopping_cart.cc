// Shopping-cart assembly (the paper's Amazon motivation): bundle a phone,
// accessories and a data plan. Shows (a) how the three ranking semantics can
// disagree under weight uncertainty, and (b) why the hard-constraint
// baseline is brittle compared to learned soft trade-offs.
//
// Build & run:  ./build/examples/shopping_cart

#include <iostream>

#include "topkpkg/topkpkg.h"

using namespace topkpkg;  // NOLINT(build/namespaces) — example binary.

namespace {

const char* const kNames[] = {
    "budget phone",   "flagship phone", "mid-range phone", "case",
    "charger",        "earbuds",        "premium earbuds", "2GB plan",
    "10GB plan",      "unlimited plan",
};

}  // namespace

int main() {
  // price (sum: cheaper better), rating (avg: higher better).
  auto table = std::move(model::ItemTable::Create(
      {
          {199.0, 3.9}, {999.0, 4.8}, {449.0, 4.4}, {25.0, 4.2},
          {19.0, 4.0},  {79.0, 4.1},  {249.0, 4.7}, {10.0, 3.5},
          {25.0, 4.3},  {45.0, 4.6},
      },
      {"price", "rating"})).value();
  auto profile = std::move(model::Profile::Parse("sum,avg")).value();
  model::PackageEvaluator evaluator(&table, &profile, /*phi=*/4);

  // Uncertainty over the shopper's price/quality trade-off: a bimodal prior
  // (bargain hunters vs quality seekers).
  std::vector<prob::Gaussian> comps;
  comps.push_back(
      std::move(prob::Gaussian::Spherical({-0.8, 0.3}, 0.15)).value());
  comps.push_back(
      std::move(prob::Gaussian::Spherical({-0.2, 0.9}, 0.15)).value());
  auto prior =
      std::move(prob::GaussianMixture::Uniform(std::move(comps))).value();

  sampling::ConstraintChecker no_feedback({});
  sampling::McmcSampler sampler(&prior, &no_feedback);
  Rng rng(5);
  auto samples = sampler.Draw(2000, rng);
  if (!samples.ok()) {
    std::cerr << samples.status() << "\n";
    return 1;
  }

  ranking::PackageRanker ranker(&evaluator);
  ranking::RankingOptions opts;
  opts.k = 3;
  opts.sigma = 3;
  auto lists = ranker.ComputeSampleLists(*samples, opts);
  if (!lists.ok()) {
    std::cerr << lists.status() << "\n";
    return 1;
  }

  auto describe = [&](const model::Package& p) {
    std::string out = "{";
    for (std::size_t i = 0; i < p.items().size(); ++i) {
      if (i > 0) out += ", ";
      out += kNames[p.items()[i]];
    }
    return out + "}";
  };

  for (auto sem : {ranking::Semantics::kExp, ranking::Semantics::kTkp,
                   ranking::Semantics::kMpo}) {
    auto result = ranker.Aggregate(*lists, sem, opts);
    std::cout << "Top carts under " << ranking::SemanticsName(sem) << ":\n";
    for (const auto& rp : result.packages) {
      std::cout << "  " << describe(rp.package) << "  score " << rp.score
                << "\n";
    }
    std::cout << "\n";
  }

  // The hard-constraint alternative: "max avg rating with total <= $B".
  std::cout << "Hard-constraint baseline (max avg rating, budget B):\n";
  for (double budget : {60.0, 300.0, 1100.0}) {
    baseline::HardConstraintQuery q;
    q.objective_feature = 1;
    q.budget_feature = 0;
    q.budget = budget;
    auto best = baseline::SolveHardConstraintExact(evaluator, q);
    if (best.ok()) {
      std::cout << "  B=$" << budget << " -> " << describe(best->package)
                << "  avg rating score " << best->utility << "\n";
    } else {
      std::cout << "  B=$" << budget << " -> " << best.status() << "\n";
    }
  }
  std::cout << "\nNote how the baseline's answer swings with the guessed "
               "budget, while the utility model trades price for quality "
               "smoothly.\n";
  return 0;
}
