// Playlist building with noisy implicit feedback (the paper's Last.fm
// motivation + the Sec. 7 noise model): the listener sometimes mis-clicks,
// yet the elicitation loop still converges to playlists they like. Prints a
// round-by-round trace of the interaction.
//
// Build & run:  ./build/examples/playlist_elicitation

#include <iostream>

#include "topkpkg/topkpkg.h"

using namespace topkpkg;  // NOLINT(build/namespaces) — example binary.

int main() {
  // 500 synthetic songs: energy (avg), duration minutes (sum — the listener
  // wants a playlist that is not too long), popularity (avg).
  auto songs = std::move(data::GenerateUniform(500, 3, 11)).value();
  auto profile = std::move(model::Profile::Parse("avg,sum,avg")).value();
  model::PackageEvaluator evaluator(&songs, &profile, /*phi=*/6);

  // Hidden taste: high energy, shorter playlists, popularity irrelevant.
  Vec hidden = {0.9, -0.5, 0.05};
  // ψ = 0.85: roughly one in seven clicks is a mistake.
  recsys::SimulatedUser listener(hidden, /*noise_psi=*/0.85);

  Rng rng(12);
  prob::GaussianMixture prior = prob::GaussianMixture::Random(3, 2, 0.5, rng);

  recsys::RecommenderOptions opts;
  opts.num_recommended = 4;
  opts.num_random = 4;
  opts.num_samples = 250;
  opts.ranking.k = 4;
  opts.ranking.sigma = 4;
  // Interactive recommendations trade exactness for latency: bound the
  // branch-and-bound so each round stays fast (results may be marked
  // truncated, which is fine for presentation lists).
  opts.ranking.limits.max_expansions = 200000;
  opts.ranking.limits.max_queue = 2000;
  opts.ranking.limits.max_items_accessed = 1000;
  // Tell the sampler feedback may be noisy too (Sec. 7): don't hard-reject
  // every violating sample.
  opts.sampler_base.noise.psi = 0.85;
  // Schema predicate (Sec. 7): a playlist needs at least 3 songs.
  opts.package_filter = [](const model::Package& p) {
    return p.size() >= 3;
  };
  recsys::PackageRecommender rec(&evaluator, &prior, opts, /*seed=*/13);

  for (int round = 1; round <= 8; ++round) {
    auto log = rec.RunRound(listener);
    if (!log.ok()) {
      std::cerr << log.status() << "\n";
      return 1;
    }
    std::cout << "Round " << round << ": presented "
              << log->presented.size() << " playlists ("
              << log->num_recommended << " recommended + "
              << log->presented.size() - log->num_recommended
              << " random), listener clicked #" << log->clicked
              << (log->clicked < log->num_recommended ? " (recommended)"
                                                      : " (exploration)")
              << "\n";
    if (!log->top_k.empty()) {
      const model::Package& best = log->top_k[0];
      Vec v = evaluator.FeatureVector(best);
      std::cout << "    current best playlist: " << best.size()
                << " songs, energy=" << v[0] << ", length score=" << v[1]
                << ", true utility=" << listener.TrueUtility(v) << "\n";
    }
  }

  std::cout << "\nFinal recommended playlists:\n";
  for (const auto& p : rec.current_top_k()) {
    Vec v = evaluator.FeatureVector(p);
    std::cout << "  [" << p.Key() << "]  true utility "
              << listener.TrueUtility(v) << "\n";
  }
  std::cout << "Feedback graph: " << rec.feedback().num_nodes()
            << " packages, " << rec.feedback().num_edges()
            << " preference edges\n";
  return 0;
}
