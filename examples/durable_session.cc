// Durable sessions: checkpoint an interactive recommendation session to a
// Bitcask-style append-only store, "kill" the process state, restore into a
// fresh recommender, and resume incrementally — same sample identities,
// warm top-list cache, no cold redraw. Finishes with a snapshot compaction
// and prints the store's live/dead accounting.
//
// Build & run:  ./build/example_durable_session [store-dir]
// (default store dir: /tmp/topkpkg_durable_session.tkps; the segment
// directory is left behind so `./build/store_fsck <dir>` can inspect it —
// CI does exactly that.)

#include <filesystem>
#include <iostream>
#include <string>

#include "topkpkg/topkpkg.h"

using namespace topkpkg;  // NOLINT(build/namespaces) — example binary.

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/topkpkg_durable_session.tkps";
  std::filesystem::remove_all(path);

  // A small catalog + the usual probabilistic-preference setup.
  auto table = std::move(data::GenerateUniform(60, 3, 7)).value();
  auto profile = std::move(model::Profile::Parse("sum,avg,min")).value();
  model::PackageEvaluator evaluator(&table, &profile, /*phi=*/3);
  Rng prior_rng(8);
  prob::GaussianMixture prior =
      prob::GaussianMixture::Random(3, 2, 0.5, prior_rng);
  recsys::RecommenderOptions opts;
  opts.num_samples = 120;
  recsys::SimulatedUser user({0.8, 0.4, -0.2});

  // Serve a few rounds, checkpointing after every one — the serving-fleet
  // shape: sessions survive process death at round granularity.
  recsys::PackageRecommender session(&evaluator, &prior, opts, /*seed=*/11);
  {
    auto store = storage::SessionStore::Open(path);
    if (!store.ok()) {
      std::cerr << store.status() << "\n";
      return 1;
    }
    for (int round = 1; round <= 3; ++round) {
      auto log = session.RunRound(user);
      if (!log.ok()) {
        std::cerr << log.status() << "\n";
        return 1;
      }
      if (Status st = session.Checkpoint(*store, /*session_id=*/1);
          !st.ok()) {
        std::cerr << st << "\n";
        return 1;
      }
      std::cout << "round " << round << ": top package {"
                << (log->top_k.empty() ? std::string("-")
                                       : log->top_k[0].Key())
                << "}, reused " << log->samples_reused << "/"
                << (log->samples_reused + log->samples_resampled)
                << " samples — checkpointed\n";
    }
    // The store handle closes here; the recommender below is a brand-new
    // object, exactly what a restarted process would hold.
  }

  auto store = storage::SessionStore::Open(path);
  if (!store.ok()) {
    std::cerr << store.status() << "\n";
    return 1;
  }
  recsys::PackageRecommender restored(&evaluator, &prior, opts, /*seed=*/0);
  if (Status st = restored.Restore(*store, 1); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  auto resumed = restored.RunRound(user);
  if (!resumed.ok()) {
    std::cerr << resumed.status() << "\n";
    return 1;
  }
  std::cout << "restored session resumed: reused " << resumed->samples_reused
            << " samples, served " << resumed->searches_skipped
            << " top lists from the warm cache (resampled only "
            << resumed->samples_resampled << ")\n";
  if (resumed->samples_reused == 0 || resumed->searches_skipped == 0) {
    std::cerr << "expected the restored session to resume incrementally\n";
    return 1;
  }
  if (Status st = restored.Checkpoint(*store, 1); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }

  // Four checkpoints live in the log now; only the last one is live data.
  const auto before = store->stats();
  if (Status st = store->Compact(); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "compaction: " << before.file_bytes << " -> "
            << store->stats().file_bytes << " bytes (" << before.dead_bytes
            << " dead bytes dropped)\n";
  std::cout << "store left at " << path << " — inspect with store_fsck\n";
  return 0;
}
