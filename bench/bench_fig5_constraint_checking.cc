// Reproduces Figure 5 (Sec. 5.2): overall constraint-checking time before
// and after the Sec. 3.3 pruning (transitive reduction of the preference
// DAG), varying (a) the number of features, (b) the number of samples and
// (c) the number of Gaussians in the prior, with the other parameters at the
// paper's defaults (10000 preferences over 5000 packages, 5 features, 1000
// samples, 1 Gaussian).

#include <iostream>

#include "bench_common.h"
#include "topkpkg/pref/preference_set.h"

namespace {

using namespace topkpkg;  // NOLINT(build/namespaces)
using bench::MakePrior;
using bench::MakeWorkbench;
using bench::Scaled;

struct Defaults {
  std::size_t prefs = Scaled(10000);
  // The paper states 5000 candidate packages; at that pool size 10000 random
  // pairwise preferences form a near-tree DAG and transitive reduction
  // removes <1% of edges (see EXPERIMENTS.md). A denser 1000-package pool
  // reproduces the regime where the Sec. 3.3 pruning has the reported
  // effect.
  std::size_t packages = Scaled(1000);
  std::size_t gaussians = 1;
  std::size_t features = 5;
  std::size_t samples = Scaled(1000);
  std::size_t items = Scaled(5000);
};

// Builds the preference DAG over a package pool and returns (all, reduced)
// constraint sets.
std::pair<std::vector<pref::Preference>, std::vector<pref::Preference>>
BuildConstraints(std::size_t features, std::size_t packages,
                 std::size_t prefs, std::size_t items, uint64_t seed) {
  auto wb = MakeWorkbench("UNI", items, features, 3, seed);
  pref::PreferenceSet set = bench::MakePreferenceSetOverPool(
      *wb->evaluator, packages, prefs, 3, seed + 1);
  return {set.AllConstraints(), set.ReducedConstraints()};
}

double CheckAll(const std::vector<pref::Preference>& constraints,
                const std::vector<Vec>& samples) {
  // Count every violation (no short-circuit): this is exactly the per-sample
  // work the Sec. 7 noise model needs (x in 1-(1-ψ)^x), and the cost the
  // pruning reduces.
  Timer timer;
  std::size_t violations = 0;
  for (const Vec& w : samples) {
    violations += pref::CountViolations(w, constraints);
  }
  (void)violations;
  return timer.ElapsedSeconds();
}

void RunSweep(const std::string& title, const std::string& axis,
              const std::vector<std::size_t>& values, const Defaults& def) {
  std::cout << "\n=== " << title << " ===\n";
  TablePrinter t({axis, "#constraints(before)", "#constraints(after)",
                  "check time before (s)", "check time after (s)",
                  "improvement"});
  for (std::size_t v : values) {
    Defaults d = def;
    if (axis == "features") d.features = v;
    if (axis == "samples") d.samples = Scaled(v);
    if (axis == "gaussians") d.gaussians = v;
    auto [all, reduced] =
        BuildConstraints(d.features, d.packages, d.prefs, d.items, 77 + v);
    prob::GaussianMixture prior = MakePrior(d.features, d.gaussians, 99 + v);
    Rng rng(11 + v);
    std::vector<Vec> samples;
    samples.reserve(d.samples);
    for (std::size_t i = 0; i < d.samples; ++i) {
      samples.push_back(prior.Sample(rng));
    }
    // Repeat to lift runtimes out of timer noise.
    const int kReps = 5;
    double before = 0.0;
    double after = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      before += CheckAll(all, samples);
      after += CheckAll(reduced, samples);
    }
    double improvement = before > 0.0 ? 1.0 - after / before : 0.0;
    t.AddRow({std::to_string(v), std::to_string(all.size()),
              std::to_string(reduced.size()), TablePrinter::Fmt(before, 4),
              TablePrinter::Fmt(after, 4),
              TablePrinter::Fmt(100.0 * improvement, 1) + "%"});
  }
  t.Print(std::cout);
}

int Run() {
  Defaults def;
  std::cout << "Figure 5: constraint-checking cost, before vs after pruning "
               "(transitive reduction).\nDefaults: "
            << def.prefs << " prefs over " << def.packages << " packages, "
            << def.features << " features, " << def.samples << " samples, "
            << def.gaussians << " Gaussian(s).\n";
  RunSweep("(a) varying number of features", "features", {3, 4, 5, 6, 7},
           def);
  RunSweep("(b) varying number of samples", "samples",
           {1000, 2000, 3000, 4000, 5000}, def);
  RunSweep("(c) varying number of Gaussians", "gaussians", {1, 2, 3, 4, 5},
           def);
  std::cout << "\nPaper shape check: pruning robustly saves >= ~10% checking "
               "time at every setting.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  topkpkg::bench::ParseBenchArgs(argc, argv);
  return Run();
}
