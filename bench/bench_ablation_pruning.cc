// Pruning ablations called out in Sec. 7 / DESIGN.md:
//   (1) Transitive reduction: how many constraints survive as feedback
//       grows, and what checking a sample costs with/without the reduction.
//   (2) Top-k-Pkg pruning: items accessed and packages expanded by the
//       branch-and-bound vs the size of the full package space, plus the
//       cost of the exactness-on-ties mode.

#include <iostream>

#include "bench_common.h"
#include "topkpkg/topk/naive_enumerator.h"
#include "topkpkg/topk/topk_pkg.h"

namespace {

using namespace topkpkg;  // NOLINT(build/namespaces)
using bench::MakeWorkbench;
using bench::Scaled;

int RunReductionAblation() {
  std::cout << "=== (1) Transitive reduction of the preference DAG ===\n";
  auto wb = MakeWorkbench("UNI", Scaled(2000), 5, 3, 91);
  if (!wb.ok()) {
    std::cerr << wb.status() << "\n";
    return 1;
  }
  TablePrinter t({"#feedback", "#constraints", "#after reduction",
                  "reduction time (ms)", "kept fraction"});
  for (std::size_t feedback : {100u, 500u, 1000u, 5000u, 10000u}) {
    pref::PreferenceSet set = bench::MakePreferenceSetOverPool(
        *wb->evaluator, 1000, Scaled(feedback), 3, 92);
    Timer timer;
    auto reduced = set.ReducedConstraints();
    double ms = timer.ElapsedMillis();
    double kept = set.num_edges() == 0
                      ? 1.0
                      : static_cast<double>(reduced.size()) /
                            static_cast<double>(set.num_edges());
    t.AddRow({std::to_string(feedback), std::to_string(set.num_edges()),
              std::to_string(reduced.size()), TablePrinter::Fmt(ms, 2),
              TablePrinter::Fmt(kept, 3)});
  }
  t.Print(std::cout);
  std::cout << "\nShape check: the denser the feedback over the same "
               "package pool, the larger the redundant fraction pruned.\n";
  return 0;
}

int RunSearchAblation() {
  std::cout << "\n=== (2) Top-k-Pkg branch-and-bound pruning ===\n";
  TablePrinter t({"#items", "package space", "items accessed", "expansions",
                  "packages generated", "search time (ms)"});
  for (std::size_t n : {1000u, 10000u, 100000u}) {
    auto wb = MakeWorkbench("UNI", Scaled(n), 4, 3, 93);
    if (!wb.ok()) {
      std::cerr << wb.status() << "\n";
      return 1;
    }
    topk::TopKPkgSearch search(wb->evaluator.get());
    Rng rng(94);
    Vec weights = rng.UniformVector(4, -1.0, 1.0);
    Timer timer;
    auto result = search.Search(weights, 5);
    double ms = timer.ElapsedMillis();
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    std::size_t space = topk::NaivePackageEnumerator::PackageSpaceSize(
        wb->table->num_items(), 3);
    t.AddRow({std::to_string(wb->table->num_items()), std::to_string(space),
              std::to_string(result->items_accessed),
              std::to_string(result->expansions),
              std::to_string(result->packages_generated),
              TablePrinter::Fmt(ms, 2)});
  }
  t.Print(std::cout);
  std::cout << "\nShape check: accessed items and generated packages are "
               "minuscule against the full package space — the bound prunes "
               "nearly everything.\n";

  std::cout << "\n=== (2b) strict vs expand-on-ties exactness mode (small "
               "instance) ===\n";
  auto wb = MakeWorkbench("UNI", 60, 4, 3, 95);
  topk::TopKPkgSearch search(wb->evaluator.get());
  Rng rng(96);
  TablePrinter m({"mode", "expansions", "packages generated",
                  "search time (ms)"});
  for (bool ties : {false, true}) {
    topk::SearchLimits limits;
    limits.expand_on_ties = ties;
    Timer timer;
    std::size_t expansions = 0;
    std::size_t generated = 0;
    Rng wrng(97);
    for (int i = 0; i < 20; ++i) {
      Vec weights = wrng.UniformVector(4, -1.0, 1.0);
      auto r = search.Search(weights, 5, limits);
      if (!r.ok()) {
        std::cerr << r.status() << "\n";
        return 1;
      }
      expansions += r->expansions;
      generated += r->packages_generated;
    }
    m.AddRow({ties ? "expand_on_ties" : "strict (paper)",
              std::to_string(expansions), std::to_string(generated),
              TablePrinter::Fmt(timer.ElapsedMillis(), 2)});
  }
  m.Print(std::cout);
  return 0;
}

int Run() {
  if (int rc = RunReductionAblation(); rc != 0) return rc;
  return RunSearchAblation();
}

}  // namespace

int main(int argc, char** argv) {
  topkpkg::bench::ParseBenchArgs(argc, argv);
  return Run();
}
