// Measures the durable-session storage layer (ISSUE 5):
//   (1) sequential append throughput of the record log (records/s and MB/s
//       at several payload sizes — the Bitcask-shape sweet spot the design
//       banks on),
//   (2) recovery: keydir-rebuild replay time of a multi-session store, and
//       a full PackageRecommender Checkpoint/Restore round trip,
//   (3) compaction: live-vs-dead bytes of a multi-checkpoint store before
//       and after Compact(), and the rewrite's wall-clock,
//   (4) durability: acked-put throughput under each FsyncPolicy, and a
//       group-commit sweep showing the fsync-count / loss-window trade the
//       kInterval policy buys (ISSUE 8).

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "topkpkg/recsys/recommender.h"
#include "topkpkg/recsys/simulated_user.h"
#include "topkpkg/storage/codec.h"
#include "topkpkg/storage/record_log.h"
#include "topkpkg/storage/session_store.h"

namespace {

using namespace topkpkg;  // NOLINT(build/namespaces)
using bench::Scaled;

std::string BenchPath(const std::string& name) {
  std::string path = "/tmp/topkpkg_bench_" + name + ".tkps";
  std::filesystem::remove_all(path);  // Stores are segment directories now.
  return path;
}

int RunAppendThroughput() {
  std::cout << "\n== sequential append throughput (flushed per record) ==\n";
  TablePrinter table({"payload bytes", "records", "records/s", "MB/s",
                      "file MB"});
  for (std::size_t payload_size : {64u, 1024u, 16384u}) {
    const std::size_t records = Scaled(20000);
    const std::string path = BenchPath("append");
    auto store = storage::SessionStore::Open(path);
    if (!store.ok()) {
      std::cerr << store.status() << "\n";
      return 1;
    }
    const std::string payload(payload_size, 'x');
    Timer timer;
    for (std::size_t i = 0; i < records; ++i) {
      // Rotating keys: a fleet of sessions checkpointing in turn.
      Status st = store->Put(i % 128, 1 + (i % 4), payload);
      if (!st.ok()) {
        std::cerr << st << "\n";
        return 1;
      }
    }
    const double seconds = timer.ElapsedSeconds();
    const double mb = static_cast<double>(store->stats().file_bytes) / 1e6;
    table.AddRow({std::to_string(payload_size), std::to_string(records),
                  TablePrinter::Fmt(static_cast<double>(records) / seconds, 0),
                  TablePrinter::Fmt(mb / seconds, 1),
                  TablePrinter::Fmt(mb, 1)});
    std::filesystem::remove_all(path);
  }
  table.Print(std::cout);
  return 0;
}

int RunRecoveryReplay() {
  std::cout << "\n== recovery: replay (keydir rebuild) of a fleet store ==\n";
  TablePrinter table({"sessions", "records", "file MB", "replay ms",
                      "live keys"});
  for (std::size_t sessions : {64u, 512u}) {
    const std::string path = BenchPath("replay");
    const std::size_t rounds = Scaled(40);
    {
      auto store = storage::SessionStore::Open(path);
      if (!store.ok()) {
        std::cerr << store.status() << "\n";
        return 1;
      }
      const std::string payload(2048, 'x');
      for (std::size_t round = 0; round < rounds; ++round) {
        for (std::size_t s = 0; s < sessions; ++s) {
          Status st = store->Put(s, 1 + (round % 4), payload);
          if (!st.ok()) {
            std::cerr << st << "\n";
            return 1;
          }
        }
      }
    }
    Timer timer;
    auto reopened = storage::SessionStore::Open(path);
    const double ms = 1e3 * timer.ElapsedSeconds();
    if (!reopened.ok()) {
      std::cerr << reopened.status() << "\n";
      return 1;
    }
    table.AddRow(
        {std::to_string(sessions), std::to_string(rounds * sessions),
         TablePrinter::Fmt(
             static_cast<double>(reopened->stats().file_bytes) / 1e6, 1),
         TablePrinter::Fmt(ms, 2),
         std::to_string(reopened->keydir_size())});
    std::filesystem::remove_all(path);
  }
  table.Print(std::cout);
  return 0;
}

int RunCheckpointRestore() {
  std::cout << "\n== recommender checkpoint / restore round trip ==\n";
  auto wb = bench::MakeWorkbench("UNI", Scaled(2000), 3, /*phi=*/3,
                                 /*seed=*/7);
  if (!wb.ok()) {
    std::cerr << wb.status() << "\n";
    return 1;
  }
  prob::GaussianMixture prior = bench::MakePrior(3, 2, 8);
  recsys::RecommenderOptions opts;
  opts.num_samples = Scaled(200);
  recsys::PackageRecommender rec(wb->evaluator.get(), &prior, opts, 11);
  recsys::SimulatedUser user({0.8, 0.4, -0.2});
  for (int round = 0; round < 3; ++round) {
    auto log = rec.RunRound(user);
    if (!log.ok()) {
      std::cerr << log.status() << "\n";
      return 1;
    }
  }
  const std::string path = BenchPath("checkpoint");
  auto store = storage::SessionStore::Open(path);
  if (!store.ok()) {
    std::cerr << store.status() << "\n";
    return 1;
  }
  Timer ckpt_timer;
  Status st = rec.Checkpoint(*store, 1);
  const double ckpt_ms = 1e3 * ckpt_timer.ElapsedSeconds();
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  recsys::PackageRecommender restored(wb->evaluator.get(), &prior, opts, 0);
  Timer restore_timer;
  st = restored.Restore(*store, 1);
  const double restore_ms = 1e3 * restore_timer.ElapsedSeconds();
  if (!st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  auto resumed = restored.RunRound(user);
  if (!resumed.ok()) {
    std::cerr << resumed.status() << "\n";
    return 1;
  }
  std::cout << "  checkpoint " << TablePrinter::Fmt(ckpt_ms, 2) << " ms ("
            << store->stats().live_bytes << " live bytes), restore "
            << TablePrinter::Fmt(restore_ms, 2)
            << " ms; resumed round reused " << resumed->samples_reused
            << " samples, served " << resumed->searches_skipped
            << " searches from the cache\n";
  std::filesystem::remove_all(path);
  return 0;
}

int RunCompaction() {
  std::cout << "\n== compaction of a multi-checkpoint store ==\n";
  TablePrinter table({"checkpoints", "before MB", "dead %", "after MB",
                      "compact ms"});
  for (std::size_t checkpoints : {8u, 32u}) {
    const std::string path = BenchPath("compact");
    auto store = storage::SessionStore::Open(path);
    if (!store.ok()) {
      std::cerr << store.status() << "\n";
      return 1;
    }
    const std::string payload(Scaled(32768), 'x');
    for (std::size_t c = 0; c < checkpoints; ++c) {
      for (std::uint64_t session = 0; session < 16; ++session) {
        for (storage::RecordKind kind = 1; kind <= 5; ++kind) {
          Status st = store->Put(session, kind, payload);
          if (!st.ok()) {
            std::cerr << st << "\n";
            return 1;
          }
        }
      }
    }
    const double before_mb =
        static_cast<double>(store->stats().file_bytes) / 1e6;
    const double dead_pct =
        100.0 * static_cast<double>(store->stats().dead_bytes) /
        static_cast<double>(store->stats().file_bytes);
    Timer timer;
    Status st = store->Compact();
    const double ms = 1e3 * timer.ElapsedSeconds();
    if (!st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    table.AddRow({std::to_string(checkpoints), TablePrinter::Fmt(before_mb, 1),
                  TablePrinter::Fmt(dead_pct, 1),
                  TablePrinter::Fmt(
                      static_cast<double>(store->stats().file_bytes) / 1e6, 1),
                  TablePrinter::Fmt(ms, 2)});
    std::filesystem::remove_all(path);
  }
  table.Print(std::cout);
  return 0;
}

// The same rotating-session put burst under each durability policy. The
// interesting column is fsyncs: kNone only syncs at seals, kEveryPut pays
// one per acked mutation, kInterval amortizes one across the group.
int RunFsyncPolicySweep() {
  std::cout << "\n== durability: acked-put throughput by fsync policy ==\n";
  TablePrinter table({"policy", "records", "records/s", "fsyncs",
                      "loss window"});
  struct Case {
    const char* name;
    storage::FsyncPolicy policy;
    const char* loss;
  };
  for (const Case& c : {Case{"none", storage::FsyncPolicy::kNone,
                             "unsynced tail"},
                        Case{"interval(32)", storage::FsyncPolicy::kInterval,
                             "<= 31 puts"},
                        Case{"every-put", storage::FsyncPolicy::kEveryPut,
                             "0 puts"}}) {
    const std::size_t records = Scaled(2000);
    const std::string path = BenchPath("fsync");
    storage::SessionStoreOptions opts;
    opts.fsync_policy = c.policy;
    opts.group_commit_puts = 32;
    auto store = storage::SessionStore::Open(path, opts);
    if (!store.ok()) {
      std::cerr << store.status() << "\n";
      return 1;
    }
    const std::string payload(1024, 'x');
    Timer timer;
    for (std::size_t i = 0; i < records; ++i) {
      Status st = store->Put(i % 128, 1 + (i % 4), payload);
      if (!st.ok()) {
        std::cerr << st << "\n";
        return 1;
      }
    }
    const double seconds = timer.ElapsedSeconds();
    table.AddRow({c.name, std::to_string(records),
                  TablePrinter::Fmt(static_cast<double>(records) / seconds, 0),
                  std::to_string(store->stats().fsyncs), c.loss});
    std::filesystem::remove_all(path);
  }
  table.Print(std::cout);
  return 0;
}

// Checkpoint-burst shape (a fleet of sessions checkpointing in turn) at
// several kInterval group sizes: group 1 degenerates to every-put, larger
// groups trade a bounded loss window for fewer fsyncs.
int RunGroupCommitSweep() {
  std::cout << "\n== durability: group-commit sweep (kInterval burst) ==\n";
  TablePrinter table({"group", "puts", "puts/s", "fsyncs", "loss window"});
  for (std::size_t group : {1u, 8u, 32u, 128u}) {
    const std::size_t puts = Scaled(2000);
    const std::string path = BenchPath("group");
    storage::SessionStoreOptions opts;
    opts.fsync_policy = storage::FsyncPolicy::kInterval;
    opts.group_commit_puts = group;
    auto store = storage::SessionStore::Open(path, opts);
    if (!store.ok()) {
      std::cerr << store.status() << "\n";
      return 1;
    }
    const std::string payload(1024, 'x');
    Timer timer;
    for (std::size_t i = 0; i < puts; ++i) {
      Status st = store->Put(i % 64, 1 + (i % 4), payload);
      if (!st.ok()) {
        std::cerr << st << "\n";
        return 1;
      }
    }
    const double seconds = timer.ElapsedSeconds();
    table.AddRow({std::to_string(group), std::to_string(puts),
                  TablePrinter::Fmt(static_cast<double>(puts) / seconds, 0),
                  std::to_string(store->stats().fsyncs),
                  "<= " + std::to_string(group - 1) + " puts"});
    std::filesystem::remove_all(path);
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  std::cout << "bench_session_store (scale=" << bench::BenchScale() << ")\n";
  if (int rc = RunAppendThroughput()) return rc;
  if (int rc = RunRecoveryReplay()) return rc;
  if (int rc = RunCheckpointRestore()) return rc;
  if (int rc = RunCompaction()) return rc;
  if (int rc = RunFsyncPolicySweep()) return rc;
  if (int rc = RunGroupCommitSweep()) return rc;
  return 0;
}
