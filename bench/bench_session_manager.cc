// Measures the multi-tenant serving frontend (SessionManager): mixed
// Feedback/GetTopK traffic with Zipf-skewed session popularity over fleets
// of 1k-100k registered sessions, reporting request latency (p50/p99) and
// feedback rounds/sec:
//   (1) LRU capacity sweep at a fixed fleet size — how hit rate in the
//       hydrated working set trades store churn for latency,
//   (2) fleet-size sweep at a fixed LRU capacity — cost of the long cold
//       tail as the registered population grows past residency.

#include <algorithm>
#include <filesystem>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "topkpkg/recsys/simulated_user.h"
#include "topkpkg/serving/session_manager.h"
#include "topkpkg/storage/session_store.h"

namespace {

using namespace topkpkg;  // NOLINT(build/namespaces)
using bench::Scaled;

std::string BenchPath(const std::string& name) {
  std::string path = "/tmp/topkpkg_bench_serving_" + name + ".tkps";
  std::filesystem::remove_all(path);  // Stores are segment directories now.
  return path;
}

// Zipf(s=1) sampler over [0, n) via inverse-CDF lookup; session popularity
// in interactive serving is classically head-heavy.
class ZipfPicker {
 public:
  ZipfPicker(std::size_t n, Rng* rng) : cdf_(n), rng_(rng) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / static_cast<double>(i + 1);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  std::size_t Next() {
    const double u = rng_->Uniform();
    return static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
  Rng* rng_;
};

struct TrafficResult {
  double seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t feedbacks = 0;
  serving::SessionManager::Stats stats;
};

// Drives `requests` mixed requests (80% Feedback / 20% GetTopK) against a
// fresh manager, submitted in waves so several sessions are always in
// flight. Latency is submit-to-completion per request.
Result<TrafficResult> RunTraffic(const bench::Workbench& wb,
                                 const prob::GaussianMixture& prior,
                                 std::size_t sessions, std::size_t capacity,
                                 std::size_t requests) {
  const std::string path =
      BenchPath(std::to_string(sessions) + "_" + std::to_string(capacity));
  TOPKPKG_ASSIGN_OR_RETURN(storage::SessionStore store,
                           storage::SessionStore::Open(path));

  serving::SessionManagerOptions opts;
  opts.recommender.num_samples = Scaled(100);
  opts.recommender.num_recommended = 3;
  opts.recommender.num_random = 3;
  opts.recommender.ranking.k = 3;
  opts.recommender.ranking.sigma = 3;
  opts.max_hydrated_sessions = capacity;
  TOPKPKG_ASSIGN_OR_RETURN(
      std::unique_ptr<serving::SessionManager> manager,
      serving::SessionManager::Create(wb.evaluator.get(), &prior, &store,
                                      opts));

  std::vector<serving::SessionHandle> handles;
  handles.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    TOPKPKG_ASSIGN_OR_RETURN(
        serving::SessionHandle handle,
        manager->StartSession(static_cast<serving::SessionId>(s + 1),
                              /*seed=*/1000 + s));
    handles.push_back(handle);
  }

  Rng rng(42);
  ZipfPicker zipf(sessions, &rng);
  recsys::SimulatedUser user({0.8, 0.4, -0.2});

  struct Pending {
    Timer timer;
    std::future<Result<recsys::RoundLog>> feedback;
    std::future<Result<serving::TopKSnapshot>> topk;
    bool is_feedback = false;
  };

  TrafficResult out;
  bench::LatencyRecorder latencies;
  const std::size_t kWave = 64;
  Timer wall;
  std::size_t issued = 0;
  while (issued < requests) {
    std::vector<Pending> wave;
    const std::size_t batch = std::min(kWave, requests - issued);
    wave.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i, ++issued) {
      serving::SessionHandle& h = handles[zipf.Next()];
      Pending p;
      p.is_feedback = rng.Uniform() < 0.8;
      if (p.is_feedback) {
        p.feedback = h.Feedback(&user);
      } else {
        p.topk = h.GetTopK();
      }
      wave.push_back(std::move(p));
    }
    for (Pending& p : wave) {
      if (p.is_feedback) {
        TOPKPKG_RETURN_IF_ERROR(p.feedback.get().status());
        ++out.feedbacks;
      } else {
        TOPKPKG_RETURN_IF_ERROR(p.topk.get().status());
      }
      latencies.RecordSeconds(p.timer.ElapsedSeconds());
    }
  }
  out.seconds = wall.ElapsedSeconds();
  out.stats = manager->stats();
  out.p50_ms = latencies.QuantileMs(0.50);
  out.p99_ms = latencies.QuantileMs(0.99);
  manager.reset();  // Drain + checkpoint before the store vanishes.
  std::filesystem::remove_all(path);
  return out;
}

void AddRow(TablePrinter& table, const std::string& head,
            const TrafficResult& r, std::size_t requests) {
  table.AddRow(
      {head, std::to_string(requests),
       TablePrinter::Fmt(r.p50_ms, 2), TablePrinter::Fmt(r.p99_ms, 2),
       TablePrinter::Fmt(static_cast<double>(r.feedbacks) / r.seconds, 0),
       std::to_string(r.stats.hydrations), std::to_string(r.stats.evictions)});
}

int RunCapacitySweep(const bench::Workbench& wb,
                     const prob::GaussianMixture& prior) {
  const std::size_t sessions = Scaled(10000);
  const std::size_t requests = Scaled(1200);
  std::cout << "\n== LRU capacity sweep (" << sessions
            << " sessions, Zipf traffic) ==\n";
  TablePrinter table({"hydrated cap", "requests", "p50 ms", "p99 ms",
                      "rounds/s", "hydrations", "evictions"});
  for (std::size_t capacity : {std::size_t{16}, std::size_t{64},
                               std::size_t{256}}) {
    auto r = RunTraffic(wb, prior, sessions, capacity, requests);
    if (!r.ok()) {
      std::cerr << r.status() << "\n";
      return 1;
    }
    AddRow(table, std::to_string(capacity), *r, requests);
  }
  table.Print(std::cout);
  return 0;
}

int RunFleetSweep(const bench::Workbench& wb,
                  const prob::GaussianMixture& prior) {
  const std::size_t capacity = 64;
  const std::size_t requests = Scaled(1200);
  std::cout << "\n== fleet-size sweep (hydrated capacity " << capacity
            << ") ==\n";
  TablePrinter table({"sessions", "requests", "p50 ms", "p99 ms", "rounds/s",
                      "hydrations", "evictions"});
  for (std::size_t sessions : {Scaled(1000), Scaled(10000), Scaled(100000)}) {
    auto r = RunTraffic(wb, prior, sessions, capacity, requests);
    if (!r.ok()) {
      std::cerr << r.status() << "\n";
      return 1;
    }
    AddRow(table, std::to_string(sessions), *r, requests);
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  std::cout << "bench_session_manager (scale=" << bench::BenchScale()
            << ")\n";
  auto wb = bench::MakeWorkbench("UNI", Scaled(2000), 3, /*phi=*/3,
                                 /*seed=*/7);
  if (!wb.ok()) {
    std::cerr << wb.status() << "\n";
    return 1;
  }
  prob::GaussianMixture prior = bench::MakePrior(3, 2, 8);
  if (int rc = RunCapacitySweep(*wb, prior)) return rc;
  if (int rc = RunFleetSweep(*wb, prior)) return rc;
  return 0;
}
