// Measures the incremental serving engine (ISSUE 2 / Sec. 3.4): a persistent
// sample pool whose violators-only replacement lets the ranking layer serve
// survivors' top lists from its SampleId-keyed cache instead of re-running
// the Top-k-Pkg search for the whole pool every round.
//   (1) Ranking-layer comparison over one identical evolving pool: per-round
//       wall-clock of the from-scratch PackageRanker vs the IncrementalRanker
//       across feedback-rate regimes (0%, 10%, 50% of the pool replaced per
//       round), with a bit-identical-result oracle check on every round.
//   (2) The full recommender loop: per-round RoundLog reuse and phase-timing
//       stats of the incremental engine, next to the from-scratch engine's
//       wall-clock.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "topkpkg/ranking/incremental_ranker.h"
#include "topkpkg/ranking/rankers.h"
#include "topkpkg/sampling/rejection_sampler.h"
#include "topkpkg/sampling/sample_pool.h"

namespace {

using namespace topkpkg;  // NOLINT(build/namespaces)
using bench::Scaled;

bool SameResult(const ranking::RankingResult& a,
                const ranking::RankingResult& b) {
  if (a.any_truncated != b.any_truncated ||
      a.packages.size() != b.packages.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.packages.size(); ++i) {
    if (!(a.packages[i].package == b.packages[i].package) ||
        a.packages[i].score != b.packages[i].score) {
      return false;
    }
  }
  return true;
}

int RunRankerComparison() {
  const std::size_t kItems = Scaled(3000);
  const std::size_t kDim = 4;
  const std::size_t kPool = Scaled(200);
  const std::size_t kRounds = 6;

  auto wb = bench::MakeWorkbench("UNI", kItems, kDim, /*phi=*/4, /*seed=*/7);
  if (!wb.ok()) {
    std::cerr << wb.status() << "\n";
    return 1;
  }
  prob::GaussianMixture prior = bench::MakePrior(kDim, 2, 8);
  sampling::ConstraintChecker unconstrained({});
  sampling::RejectionSampler sampler(&prior, &unconstrained);

  ranking::RankingOptions ropts;
  ropts.k = 5;
  ropts.sigma = 5;

  std::cout << "Incremental vs from-scratch ranking over one evolving pool "
            << "(pool=" << kPool << ", items=" << kItems << ", " << kRounds
            << " rounds per regime)\n\n";
  TablePrinter table({"violators/round", "scratch (ms avg)", "incr (ms avg)",
                      "speedup", "reuse rate"});

  for (double rate : {0.0, 0.1, 0.5}) {
    Rng rng(17);
    auto initial = sampler.Draw(kPool, rng);
    if (!initial.ok()) {
      std::cerr << initial.status() << "\n";
      return 1;
    }
    sampling::SamplePool pool(std::move(initial).value());
    ranking::PackageRanker scratch(wb->evaluator.get());
    ranking::IncrementalRanker incremental(wb->evaluator.get());

    // Warm the cache with the initial pool (the steady-state serving regime
    // Sec. 3.4 amortizes into; the from-scratch engine has no warm state).
    sampling::PoolDelta initial_delta;
    for (const auto& s : pool.samples()) {
      initial_delta.added_ids.push_back(s.id);
    }
    auto warm = incremental.Rank(pool, initial_delta,
                                 ranking::Semantics::kExp, ropts);
    if (!warm.ok()) {
      std::cerr << warm.status() << "\n";
      return 1;
    }

    const std::size_t violators_per_round =
        static_cast<std::size_t>(static_cast<double>(kPool) * rate + 0.5);
    double scratch_s = 0.0;
    double incr_s = 0.0;
    double reuse = 0.0;
    for (std::size_t round = 0; round < kRounds; ++round) {
      // Feedback proxy: `rate` of the pool violates the round's new
      // preference and is replaced by fresh draws.
      std::vector<sampling::WeightedSample> fresh;
      if (violators_per_round > 0) {
        auto drawn = sampler.Draw(violators_per_round, rng);
        if (!drawn.ok()) {
          std::cerr << drawn.status() << "\n";
          return 1;
        }
        fresh = std::move(drawn).value();
      }
      sampling::PoolDelta delta = pool.Replace(
          rng.SampleWithoutReplacement(kPool, violators_per_round),
          std::move(fresh));

      Timer t_scratch;
      auto from_scratch =
          scratch.Rank(pool.samples(), ranking::Semantics::kExp, ropts);
      scratch_s += t_scratch.ElapsedSeconds();

      Timer t_incr;
      ranking::IncrementalRankStats stats;
      auto incr = incremental.Rank(pool, delta, ranking::Semantics::kExp,
                                   ropts, &stats);
      incr_s += t_incr.ElapsedSeconds();

      if (!from_scratch.ok() || !incr.ok()) {
        std::cerr << "rank failed\n";
        return 1;
      }
      if (!SameResult(*from_scratch, *incr)) {
        std::cerr << "BUG: incremental result diverged from the "
                     "from-scratch oracle\n";
        return 1;
      }
      reuse += static_cast<double>(stats.searches_skipped) /
               static_cast<double>(pool.size());
    }
    double n = static_cast<double>(kRounds);
    table.AddRow({std::to_string(violators_per_round),
                  TablePrinter::Fmt(1e3 * scratch_s / n, 2),
                  TablePrinter::Fmt(1e3 * incr_s / n, 2),
                  TablePrinter::Fmt(scratch_s / incr_s, 2),
                  TablePrinter::Fmt(reuse / n, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nEvery round's incremental result was verified bit-identical "
               "to the from-scratch oracle.\n";
  return 0;
}

int RunRecommenderLoop() {
  const std::size_t kItems = Scaled(1000);
  const std::size_t kDim = 3;
  const std::size_t kRounds = 6;

  auto wb = bench::MakeWorkbench("UNI", kItems, kDim, /*phi=*/3, /*seed=*/9);
  if (!wb.ok()) {
    std::cerr << wb.status() << "\n";
    return 1;
  }
  prob::GaussianMixture prior = bench::MakePrior(kDim, 2, 10);
  recsys::SimulatedUser user({0.8, 0.4, -0.3});

  recsys::RecommenderOptions opts;
  opts.num_recommended = 5;
  opts.num_random = 5;
  opts.num_samples = Scaled(200);
  opts.sampler = recsys::SamplerKind::kRejection;

  std::cout << "\nRecommender loop: per-round RoundLog reuse stats "
            << "(pool=" << opts.num_samples << ", " << kRounds
            << " rounds)\n\n";
  TablePrinter table({"round", "reused", "resampled", "skipped searches",
                      "dedup hits", "dedup rate", "maintain (ms)",
                      "sample (ms)", "rank (ms)"});
  opts.incremental = true;
  recsys::PackageRecommender incremental(wb->evaluator.get(), &prior, opts,
                                         /*seed=*/21);
  double incr_s = 0.0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    Timer t;
    auto log = incremental.RunRound(user);
    incr_s += t.ElapsedSeconds();
    if (!log.ok()) {
      std::cerr << log.status() << "\n";
      return 1;
    }
    // Dedup hit rate: searches answered by an identical-weight twin within
    // the same round, over all searches the round would otherwise run.
    const std::uint64_t dedup_total =
        log->searches_deduped + log->searches_unique;
    table.AddRow({std::to_string(round), std::to_string(log->samples_reused),
                  std::to_string(log->samples_resampled),
                  std::to_string(log->searches_skipped),
                  std::to_string(log->searches_deduped),
                  TablePrinter::Fmt(dedup_total > 0
                                        ? static_cast<double>(
                                              log->searches_deduped) /
                                              static_cast<double>(dedup_total)
                                        : 0.0,
                                    3),
                  TablePrinter::Fmt(1e3 * log->maintain_seconds, 2),
                  TablePrinter::Fmt(1e3 * log->sample_seconds, 2),
                  TablePrinter::Fmt(1e3 * log->rank_seconds, 2)});
  }
  table.Print(std::cout);

  opts.incremental = false;
  recsys::PackageRecommender scratch(wb->evaluator.get(), &prior, opts,
                                     /*seed=*/21);
  double scratch_s = 0.0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    Timer t;
    auto log = scratch.RunRound(user);
    scratch_s += t.ElapsedSeconds();
    if (!log.ok()) {
      std::cerr << log.status() << "\n";
      return 1;
    }
  }
  std::cout << "\nfrom-scratch engine: "
            << TablePrinter::Fmt(1e3 * scratch_s / kRounds, 2)
            << " ms/round, incremental engine: "
            << TablePrinter::Fmt(1e3 * incr_s / kRounds, 2)
            << " ms/round (speedup "
            << TablePrinter::Fmt(scratch_s / incr_s, 2) << "x)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  topkpkg::bench::ParseBenchArgs(argc, argv);
  int rc = RunRankerComparison();
  if (rc != 0) return rc;
  return RunRecommenderLoop();
}
