// Reproduces the Sec. 5.4 sample-quality study: with enough samples, the
// top-5 package lists produced by the three sampling methods converge, and
// the lists under different ranking semantics are strongly correlated. We
// print pairwise top-5 overlap (|A∩B|/5) across samplers and semantics.

#include <iostream>
#include <map>
#include <set>
#include <string>

#include "bench_common.h"
#include "topkpkg/ranking/rankers.h"

namespace {

using namespace topkpkg;  // NOLINT(build/namespaces)
using bench::MakePrior;
using bench::MakeWorkbench;
using bench::Scaled;

std::set<std::string> TopKeys(const ranking::RankingResult& r) {
  std::set<std::string> keys;
  for (const auto& rp : r.packages) keys.insert(rp.package.Key());
  return keys;
}

double Overlap(const std::set<std::string>& a, const std::set<std::string>& b,
               std::size_t k) {
  std::size_t common = 0;
  for (const auto& key : a) common += b.count(key);
  return static_cast<double>(common) / static_cast<double>(k);
}

int Run() {
  // Paper setting: 4 features, 2 Gaussians, many feedback preferences,
  // thousands of samples (scaled).
  const std::size_t kFeatures = 4;
  const std::size_t kSamples = Scaled(2000);
  const std::size_t kFeedback = Scaled(100);
  const std::size_t kTopK = 5;

  auto wb = MakeWorkbench("UNI", Scaled(5000), kFeatures, 3, 31);
  if (!wb.ok()) {
    std::cerr << wb.status() << "\n";
    return 1;
  }
  prob::GaussianMixture prior = MakePrior(kFeatures, 2, 33);
  auto prefs = bench::MakeReachablePrefs(*wb->evaluator, prior, 500,
                                         kFeedback, 3, 32);
  sampling::ConstraintChecker checker(prefs);

  std::cout << "Sec. 5.4 sample quality: " << kSamples << " samples, "
            << kFeedback << " feedback preferences, " << kFeatures
            << " features, 2 Gaussians.\n\n";

  const std::vector<recsys::SamplerKind> kinds = {
      recsys::SamplerKind::kRejection, recsys::SamplerKind::kImportance,
      recsys::SamplerKind::kMcmc};
  const std::vector<ranking::Semantics> semantics = {
      ranking::Semantics::kExp, ranking::Semantics::kTkp,
      ranking::Semantics::kMpo};

  // Top-5 list per (sampler, semantics).
  std::map<std::string, std::set<std::string>> lists;
  ranking::PackageRanker ranker(wb->evaluator.get());
  for (auto kind : kinds) {
    Rng rng(34);
    auto samples = bench::DrawByKind(kind, prior, checker, kSamples, rng,
                                     nullptr);
    if (!samples.ok()) {
      std::cerr << recsys::SamplerKindName(kind) << ": " << samples.status()
                << "\n";
      return 1;
    }
    ranking::RankingOptions opts;
    opts.k = kTopK;
    opts.sigma = kTopK;
    opts.limits.max_expansions = 100000;
    opts.limits.max_queue = 2000;
    opts.limits.max_items_accessed = 2000;
    auto per_sample = ranker.ComputeSampleLists(*samples, opts);
    if (!per_sample.ok()) {
      std::cerr << per_sample.status() << "\n";
      return 1;
    }
    for (auto sem : semantics) {
      auto result = ranker.Aggregate(*per_sample, sem, opts);
      lists[std::string(recsys::SamplerKindName(kind)) + "/" +
            ranking::SemanticsName(sem)] = TopKeys(result);
    }
  }

  std::cout << "=== Top-5 overlap across samplers (same semantics) ===\n";
  TablePrinter across_samplers({"semantics", "RS vs IS", "RS vs MS",
                                "IS vs MS"});
  for (auto sem : semantics) {
    std::string s = ranking::SemanticsName(sem);
    across_samplers.AddRow(
        {s,
         TablePrinter::Fmt(Overlap(lists["RS/" + s], lists["IS/" + s], kTopK),
                           2),
         TablePrinter::Fmt(Overlap(lists["RS/" + s], lists["MS/" + s], kTopK),
                           2),
         TablePrinter::Fmt(Overlap(lists["IS/" + s], lists["MS/" + s], kTopK),
                           2)});
  }
  across_samplers.Print(std::cout);

  std::cout << "\n=== Top-5 overlap across semantics (same sampler) ===\n";
  TablePrinter across_semantics({"sampler", "EXP vs TKP", "EXP vs MPO",
                                 "TKP vs MPO"});
  for (auto kind : kinds) {
    std::string k = recsys::SamplerKindName(kind);
    across_semantics.AddRow(
        {k,
         TablePrinter::Fmt(
             Overlap(lists[k + "/EXP"], lists[k + "/TKP"], kTopK), 2),
         TablePrinter::Fmt(
             Overlap(lists[k + "/EXP"], lists[k + "/MPO"], kTopK), 2),
         TablePrinter::Fmt(
             Overlap(lists[k + "/TKP"], lists[k + "/MPO"], kTopK), 2)});
  }
  across_semantics.Print(std::cout);

  std::cout << "\nPaper shape check (Sec. 5.4): the samplers agree with each "
               "other under a fixed semantics, and TKP/MPO correlate "
               "strongly with each other; EXP may diverge from both — the "
               "paper notes a frequently-appearing package need not have "
               "high expected utility.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  topkpkg::bench::ParseBenchArgs(argc, argv);
  return Run();
}
