// Reproduces Figure 8 (Sec. 5.6): elicitation effectiveness on the NBA-like
// dataset. For each feature count, a batch of hidden ground-truth utility
// functions is drawn; the recommender (MCMC sampling + EXP semantics,
// 5 recommended + 5 random packages per round) runs until its top-k list
// stabilizes, and we report the average number of clicks consumed.

#include <iostream>

#include "bench_common.h"

namespace {

using namespace topkpkg;  // NOLINT(build/namespaces)
using bench::MakePrior;
using bench::MakeWorkbench;
using bench::Scaled;

int Run() {
  const std::size_t kUsers = Scaled(15);  // Paper: 100 ground truths.
  const std::size_t kMaxRounds = 20;
  const std::size_t kStableRounds = 2;

  std::cout << "Figure 8: clicks until the top-k list stabilizes (NBA-like "
               "dataset, MCMC + EXP, 5 recommended + 5 random, "
            << kUsers << " hidden utility functions per point)\n\n";

  TablePrinter t({"#features", "avg #clicks", "min", "max",
                  "avg true-utility ratio vs optimum"});
  for (std::size_t m : {2u, 4u, 6u, 8u, 10u}) {
    auto wb = MakeWorkbench("NBA", 0, m, 3, 61 + m);
    if (!wb.ok()) {
      std::cerr << wb.status() << "\n";
      return 1;
    }
    prob::GaussianMixture prior = MakePrior(m, 1, 62 + m);
    topk::TopKPkgSearch oracle_search(wb->evaluator.get());

    Rng rng(63 + m);
    double total_clicks = 0.0;
    std::size_t min_clicks = kMaxRounds + 1;
    std::size_t max_clicks = 0;
    double total_ratio = 0.0;
    std::size_t ok_users = 0;
    for (std::size_t u = 0; u < kUsers; ++u) {
      Vec hidden = rng.UniformVector(m, -1.0, 1.0);
      recsys::RecommenderOptions opts;
      opts.num_recommended = 5;
      opts.num_random = 5;
      opts.ranking.k = 5;
      opts.ranking.sigma = 5;
      opts.ranking.limits.max_expansions = 20000;
      opts.ranking.limits.max_queue = 500;
      opts.ranking.limits.max_items_accessed = 600;
      opts.num_samples = Scaled(100);
      recsys::PackageRecommender rec(wb->evaluator.get(), &prior, opts,
                                     /*seed=*/1000 * m + u);
      recsys::SimulatedUser user(hidden);
      // 0.6 overlap tolerates the jitter of budgeted searches over a finite
      // sample pool while still requiring a genuinely stable ranking.
      auto clicks = rec.RunUntilConverged(user, kStableRounds, kMaxRounds,
                                          /*min_overlap=*/0.6);
      if (!clicks.ok()) {
        std::cerr << "user " << u << ": " << clicks.status() << "\n";
        continue;
      }
      ++ok_users;
      total_clicks += static_cast<double>(*clicks);
      min_clicks = std::min(min_clicks, *clicks);
      max_clicks = std::max(max_clicks, *clicks);

      // Quality: true utility of the learned top package vs the optimum.
      if (!rec.current_top_k().empty()) {
        double got = wb->evaluator->Utility(rec.current_top_k()[0], hidden);
        auto best = oracle_search.Search(hidden, 1);
        if (best.ok() && !best->packages.empty() &&
            best->packages[0].utility > 0.0) {
          total_ratio += got / best->packages[0].utility;
        } else {
          total_ratio += 1.0;  // Degenerate optimum; count as matched.
        }
      }
    }
    if (ok_users == 0) continue;
    t.AddRow({std::to_string(m),
              TablePrinter::Fmt(total_clicks / ok_users, 2),
              std::to_string(min_clicks), std::to_string(max_clicks),
              TablePrinter::Fmt(total_ratio / ok_users, 3)});
  }
  t.Print(std::cout);
  std::cout << "\nPaper shape check: only a handful of clicks (single "
               "digits) are needed before the ranking stabilizes, across "
               "feature counts.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  topkpkg::bench::ParseBenchArgs(argc, argv);
  return Run();
}
