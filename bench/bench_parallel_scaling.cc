// Parallel sampling-engine scaling: samples/sec for the rejection and MCMC
// samplers when the draw is sharded across 1/2/4/8 worker threads with the
// deterministic chunked RNG streams of ParallelSampler, plus the batched
// (struct-of-arrays) constraint checker and the parallel violator scan
// against their scalar counterparts. On a multi-core host the 4-thread
// rejection row should exceed 2x the 1-thread throughput; on a single
// hardware thread the speedup column degenerates to ~1x (the engine is
// still exercised end to end).

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "topkpkg/common/thread_pool.h"
#include "topkpkg/sampling/mcmc_sampler.h"
#include "topkpkg/sampling/parallel_sampler.h"
#include "topkpkg/sampling/rejection_sampler.h"
#include "topkpkg/sampling/sample_maintenance.h"
#include "topkpkg/sampling/sample_pool.h"

namespace {

using namespace topkpkg;  // NOLINT(build/namespaces)
using bench::MakePrior;
using bench::MakeReachablePrefs;
using bench::MakeWorkbench;
using bench::Scaled;

constexpr std::size_t kFeatures = 4;
constexpr std::size_t kRepeats = 3;

struct Workload {
  bench::Workbench wb;
  prob::GaussianMixture prior;
  std::vector<pref::Preference> prefs;
};

Workload MakeWorkload(std::size_t num_prefs, uint64_t seed) {
  auto wb = MakeWorkbench("UNI", Scaled(2000), kFeatures, 3, seed);
  if (!wb.ok()) {
    std::cerr << "workbench: " << wb.status() << "\n";
    std::exit(1);
  }
  prob::GaussianMixture prior = MakePrior(kFeatures, 2, seed + 1);
  std::vector<pref::Preference> prefs = MakeReachablePrefs(
      *wb->evaluator, prior, Scaled(200), num_prefs, 3, seed + 2);
  return Workload{std::move(wb).value(), std::move(prior), std::move(prefs)};
}

double SamplesPerSecond(const sampling::ParallelSampler& sampler,
                        std::size_t n) {
  double best = 0.0;
  for (std::size_t r = 0; r < kRepeats; ++r) {
    Timer timer;
    auto samples = sampler.Draw(n, /*seed=*/1234 + r);
    const double secs = timer.ElapsedSeconds();
    if (!samples.ok()) {
      std::cerr << "draw: " << samples.status() << "\n";
      std::exit(1);
    }
    best = std::max(best, static_cast<double>(samples->size()) / secs);
  }
  return best;
}

void RunSamplerScaling(const Workload& work, recsys::SamplerKind kind,
                       std::size_t n) {
  sampling::ConstraintChecker checker(work.prefs);
  sampling::McmcSamplerOptions mcmc_opts;
  sampling::ParallelSampler::ChunkDrawFn draw;
  if (kind == recsys::SamplerKind::kRejection) {
    draw = [&](std::size_t count, Rng& rng, sampling::SampleStats* stats) {
      sampling::RejectionSampler sampler(&work.prior, &checker);
      return sampler.Draw(count, rng, stats);
    };
  } else {
    draw = [&](std::size_t count, Rng& rng, sampling::SampleStats* stats) {
      sampling::McmcSampler sampler(&work.prior, &checker, mcmc_opts);
      return sampler.Draw(count, rng, stats);
    };
  }

  TablePrinter table({"threads", "samples/s", "speedup"});
  double base = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    sampling::ParallelSamplerOptions popts;
    popts.num_threads = threads;
    sampling::ParallelSampler sampler(draw, popts);
    const double rate = SamplesPerSecond(sampler, n);
    if (threads == 1) base = rate;
    table.AddRow({std::to_string(threads), TablePrinter::Fmt(rate, 0),
                  TablePrinter::Fmt(base > 0.0 ? rate / base : 0.0, 2)});
  }
  std::cout << "\n== " << recsys::SamplerKindName(kind) << " sampler, "
            << work.prefs.size() << " constraints, " << n
            << " samples per draw ==\n";
  table.Print(std::cout);
}

void RunBatchCheckerScaling(const Workload& work, std::size_t n) {
  sampling::ConstraintChecker checker(work.prefs);
  Rng rng(77);
  std::vector<sampling::WeightedSample> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    samples.push_back(
        sampling::WeightedSample{rng.UniformVector(kFeatures, -1.0, 1.0), 1.0});
  }
  const sampling::WeightBatch batch =
      sampling::WeightBatch::FromSamples(samples);

  Timer scalar_timer;
  std::size_t scalar_valid = 0;
  for (const auto& s : samples) {
    if (checker.IsValid(s.w)) ++scalar_valid;
  }
  const double scalar_secs = scalar_timer.ElapsedSeconds();

  Timer batch_timer;
  std::vector<std::uint8_t> verdicts = checker.IsValidBatch(batch);
  const double batch_secs = batch_timer.ElapsedSeconds();
  std::size_t batch_valid = 0;
  for (std::uint8_t v : verdicts) batch_valid += v;
  if (batch_valid != scalar_valid) {
    std::cerr << "batch/scalar verdict mismatch\n";
    std::exit(1);
  }

  TablePrinter table({"kernel", "vectors/s", "speedup"});
  const double scalar_rate = static_cast<double>(n) / scalar_secs;
  const double batch_rate = static_cast<double>(n) / batch_secs;
  table.AddRow({"IsValid (scalar)", TablePrinter::Fmt(scalar_rate, 0),
                TablePrinter::Fmt(1.0, 2)});
  table.AddRow({"IsValidBatch (SoA)", TablePrinter::Fmt(batch_rate, 0),
                TablePrinter::Fmt(batch_rate / scalar_rate, 2)});
  std::cout << "\n== batched constraint checking, " << work.prefs.size()
            << " constraints x " << n << " vectors ==\n";
  table.Print(std::cout);
}

void RunMaintenanceScaling(const Workload& work, std::size_t pool_size) {
  Rng rng(99);
  std::vector<sampling::WeightedSample> samples;
  samples.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    samples.push_back(
        sampling::WeightedSample{rng.UniformVector(kFeatures, -1.0, 1.0), 1.0});
  }
  sampling::SamplePool pool(std::move(samples));
  pool.batch();  // Pre-build the view; the scan itself is what we time.
  const pref::Preference& pref = work.prefs.front();

  TablePrinter table({"threads", "scans/s", "speedup"});
  double base = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool workers(threads);
    double best = 0.0;
    for (std::size_t r = 0; r < kRepeats; ++r) {
      Timer timer;
      auto res = sampling::FindViolatorsParallel(pool, pref, workers);
      best = std::max(best, 1.0 / timer.ElapsedSeconds());
      (void)res;
    }
    if (threads == 1) base = best;
    table.AddRow({std::to_string(threads), TablePrinter::Fmt(best, 1),
                  TablePrinter::Fmt(base > 0.0 ? best / base : 0.0, 2)});
  }
  std::cout << "\n== parallel violator scan, pool of " << pool_size
            << " samples ==\n";
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  topkpkg::bench::ParseBenchArgs(argc, argv);
  std::cout << "hardware threads: " << ThreadPool::DefaultThreadCount()
            << "\n";
  Workload work = MakeWorkload(/*num_prefs=*/Scaled(30), /*seed=*/5);
  RunSamplerScaling(work, recsys::SamplerKind::kRejection,
                    Scaled(4000));
  RunSamplerScaling(work, recsys::SamplerKind::kMcmc, Scaled(4000));
  RunBatchCheckerScaling(work, Scaled(200000));
  RunMaintenanceScaling(work, Scaled(500000));
  return 0;
}
