// Ablation for Theorems 1-2 (Sec. 3.2): effective number of samples (ENS)
// per raw proposal for the three samplers as feedback accumulates. The
// predicted ordering is ENS(MS) >= ENS(IS) >= ENS(RS) once the valid region
// is meaningfully constrained.

#include <iostream>

#include "bench_common.h"
#include "topkpkg/sampling/ens.h"

namespace {

using namespace topkpkg;  // NOLINT(build/namespaces)
using bench::MakePrior;
using bench::MakeWorkbench;
using bench::Scaled;

int Run() {
  const std::size_t kFeatures = 3;
  const std::size_t kSamples = Scaled(500);

  auto wb = MakeWorkbench("UNI", Scaled(2000), kFeatures, 3, 71);
  if (!wb.ok()) {
    std::cerr << wb.status() << "\n";
    return 1;
  }
  prob::GaussianMixture prior = MakePrior(kFeatures, 1, 72);

  std::cout << "ENS per raw proposal vs amount of feedback (" << kSamples
            << " valid samples drawn per cell)\n\n";
  TablePrinter t({"#feedback", "RS", "IS", "MS", "ordering holds"});
  for (std::size_t feedback : {1u, 5u, 10u, 20u, 40u}) {
    auto prefs =
        bench::MakeReachablePrefs(*wb->evaluator, prior, 300, feedback, 3, 73);
    sampling::ConstraintChecker checker(prefs);
    double eff[3] = {0.0, 0.0, 0.0};
    int idx = 0;
    for (auto kind :
         {recsys::SamplerKind::kRejection, recsys::SamplerKind::kImportance,
          recsys::SamplerKind::kMcmc}) {
      Rng rng(74);
      sampling::SampleStats stats;
      auto samples =
          bench::DrawByKind(kind, prior, checker, kSamples, rng, &stats);
      if (!samples.ok()) {
        std::cerr << samples.status() << "\n";
        return 1;
      }
      eff[idx++] = sampling::EnsPerProposal(*samples, stats);
    }
    bool holds = eff[2] >= eff[1] * 0.5 && eff[1] >= eff[0];
    t.AddRow({std::to_string(feedback), TablePrinter::Fmt(eff[0], 4),
              TablePrinter::Fmt(eff[1], 4), TablePrinter::Fmt(eff[2], 4),
              holds ? "yes" : "NO"});
  }
  t.Print(std::cout);
  std::cout << "\nShape check: IS >= RS everywhere; MS competitive with IS "
               "(it pays a fixed thinning factor) and degrades far slower "
               "as feedback accumulates.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  topkpkg::bench::ParseBenchArgs(argc, argv);
  return Run();
}
