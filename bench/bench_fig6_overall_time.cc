// Reproduces Figure 6 (Sec. 5.3): overall processing time of package
// recommendation split into sample generation and top-k package search, for
// Rejection (RS), Importance (IS) and MCMC (MS) sampling over the five
// datasets (UNI, PWR, COR, ANT, NBA).
//   (a)-(e): vary the number of valid samples at 5 features (IS feasible).
//   (f)-(j): vary the number of features at fixed sample count; IS is
//            excluded above 5 features because the grid-center computation
//            is exponential in dimensionality, exactly as in the paper.

#include <iostream>

#include "bench_common.h"
#include "topkpkg/ranking/rankers.h"

namespace {

using namespace topkpkg;  // NOLINT(build/namespaces)
using bench::MakePrior;
using bench::MakeWorkbench;
using bench::Scaled;

constexpr std::size_t kPhi = 3;
constexpr std::size_t kTopK = 5;
constexpr std::size_t kFeedback = 10;

struct Measurement {
  double sample_seconds = 0.0;
  double topk_seconds = 0.0;
  bool ok = false;
  std::string error;
};

Measurement Measure(const std::string& dataset, std::size_t items,
                    std::size_t features, std::size_t num_samples,
                    recsys::SamplerKind kind, uint64_t seed) {
  Measurement out;
  auto wb = MakeWorkbench(dataset, items, features, kPhi, seed);
  if (!wb.ok()) {
    out.error = wb.status().ToString();
    return out;
  }
  prob::GaussianMixture prior = MakePrior(features, 1, seed + 2);
  auto prefs = bench::MakeReachablePrefs(*wb->evaluator, prior, 500,
                                         kFeedback, kPhi, seed + 1);
  sampling::ConstraintChecker checker(prefs);

  Rng rng(seed + 3);
  sampling::SampleStats stats;
  Timer sample_timer;
  auto samples =
      bench::DrawByKind(kind, prior, checker, num_samples, rng, &stats);
  out.sample_seconds = sample_timer.ElapsedSeconds();
  if (!samples.ok()) {
    out.error = samples.status().ToString();
    return out;
  }

  Timer topk_timer;
  ranking::PackageRanker ranker(wb->evaluator.get());
  ranking::RankingOptions opts;
  opts.k = kTopK;
  opts.sigma = kTopK;
  // Per-sample searches run under a fixed work budget so the series measure
  // the paper's relative costs rather than worst-case exact search blowups.
  opts.limits.max_expansions = 10000;
  opts.limits.max_queue = 300;
  opts.limits.max_items_accessed = 500;
  auto ranked = ranker.Rank(*samples, ranking::Semantics::kExp, opts);
  out.topk_seconds = topk_timer.ElapsedSeconds();
  if (!ranked.ok()) {
    out.error = ranked.status().ToString();
    return out;
  }
  out.ok = true;
  return out;
}

void SweepSamples(const std::string& dataset) {
  const std::size_t items = Scaled(10000);
  std::cout << "\n--- " << dataset
            << ": vary #samples (5 features, feedback=" << kFeedback
            << ") ---\n";
  TablePrinter t({"#samples", "RS gen(s)", "RS topk(s)", "IS gen(s)",
                  "IS topk(s)", "MS gen(s)", "MS topk(s)"});
  for (std::size_t n : {1000u, 2000u, 3000u, 4000u, 5000u}) {
    std::size_t samples = Scaled(n);
    std::vector<std::string> row{std::to_string(samples)};
    for (auto kind :
         {recsys::SamplerKind::kRejection, recsys::SamplerKind::kImportance,
          recsys::SamplerKind::kMcmc}) {
      // One fixed workload per dataset: only the sample count varies along
      // the axis, as in the paper.
      Measurement m = Measure(dataset, items, 5, samples, kind, 900);
      if (m.ok) {
        row.push_back(TablePrinter::Fmt(m.sample_seconds, 3));
        row.push_back(TablePrinter::Fmt(m.topk_seconds, 3));
      } else {
        row.push_back("n/a");
        row.push_back("n/a");
      }
    }
    t.AddRow(row);
  }
  t.Print(std::cout);
}

void SweepFeatures(const std::string& dataset) {
  const std::size_t items = Scaled(10000);
  const std::size_t samples = Scaled(1000);
  std::cout << "\n--- " << dataset << ": vary #features (" << samples
            << " samples) ---\n";
  TablePrinter t({"#features", "RS gen(s)", "RS topk(s)", "IS gen(s)",
                  "MS gen(s)", "MS topk(s)"});
  for (std::size_t m : {2u, 4u, 6u, 8u, 10u}) {
    std::vector<std::string> row{std::to_string(m)};
    Measurement rs = Measure(dataset, items, m, samples,
                             recsys::SamplerKind::kRejection, 700);
    row.push_back(rs.ok ? TablePrinter::Fmt(rs.sample_seconds, 3) : "n/a");
    row.push_back(rs.ok ? TablePrinter::Fmt(rs.topk_seconds, 3) : "n/a");
    if (m <= 5) {
      Measurement is = Measure(dataset, items, m, samples,
                               recsys::SamplerKind::kImportance, 700);
      row.push_back(is.ok ? TablePrinter::Fmt(is.sample_seconds, 3) : "n/a");
    } else {
      row.push_back("excluded");  // Exponential grid (Sec. 5.3).
    }
    Measurement ms = Measure(dataset, items, m, samples,
                             recsys::SamplerKind::kMcmc, 700);
    row.push_back(ms.ok ? TablePrinter::Fmt(ms.sample_seconds, 3) : "n/a");
    row.push_back(ms.ok ? TablePrinter::Fmt(ms.topk_seconds, 3) : "n/a");
    t.AddRow(row);
  }
  t.Print(std::cout);
}

int Run() {
  std::cout << "Figure 6: overall processing time (sample generation vs "
               "top-k package search).\n";
  for (const std::string& dataset : bench::AllDatasets()) {
    SweepSamples(dataset);
  }
  for (const std::string& dataset : bench::AllDatasets()) {
    SweepFeatures(dataset);
  }
  std::cout << "\nPaper shape checks: RS sample generation dominates and "
               "grows fastest; IS is excluded beyond 5 features; MS scales "
               "with dimensionality; top-k search cost is comparable to or "
               "below sampling cost.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  topkpkg::bench::ParseBenchArgs(argc, argv);
  return Run();
}
