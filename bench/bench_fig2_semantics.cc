// Reproduces the worked example of Figures 1-2 (Sec. 2.2): the per-weight
// utility table and the top-2 package lists under the EXP, TKP and MPO
// ranking semantics, which deliberately disagree with one another.

#include <iostream>

#include "bench_common.h"
#include "topkpkg/ranking/rankers.h"

namespace {

using namespace topkpkg;  // NOLINT(build/namespaces) — bench binary only.

int Run() {
  auto table = std::move(model::ItemTable::Create(
      {{0.6, 0.2}, {0.4, 0.4}, {0.2, 0.4}}, {"f1:cost", "f2:rating"}))
      .value();
  auto profile = std::move(model::Profile::Parse("sum,avg")).value();
  model::PackageEvaluator evaluator(&table, &profile, 2);

  const std::vector<Vec> weight_vectors = {
      {0.5, 0.1}, {0.1, 0.5}, {0.1, 0.1}};
  const std::vector<double> probs = {0.3, 0.4, 0.3};
  const std::vector<model::Package> packages = {
      model::Package::Of({0}),    model::Package::Of({1}),
      model::Package::Of({2}),    model::Package::Of({0, 1}),
      model::Package::Of({1, 2}), model::Package::Of({0, 2})};
  const std::vector<std::string> names = {"p1", "p2", "p3",
                                          "p4", "p5", "p6"};

  std::cout << "=== Figure 2(c): utility of each package under each w ===\n";
  TablePrinter util({"w (prob)", "p1", "p2", "p3", "p4", "p5", "p6"});
  for (std::size_t wi = 0; wi < weight_vectors.size(); ++wi) {
    std::vector<std::string> row;
    row.push_back("w" + std::to_string(wi + 1) + " (" +
                  TablePrinter::Fmt(probs[wi], 1) + ")");
    for (const auto& p : packages) {
      row.push_back(TablePrinter::Fmt(
          evaluator.Utility(p, weight_vectors[wi]), 3));
    }
    util.AddRow(row);
  }
  util.Print(std::cout);

  std::vector<sampling::WeightedSample> samples;
  for (std::size_t wi = 0; wi < weight_vectors.size(); ++wi) {
    samples.push_back({weight_vectors[wi], probs[wi]});
  }
  ranking::PackageRanker ranker(&evaluator);

  auto name_of = [&](const model::Package& p) {
    for (std::size_t i = 0; i < packages.size(); ++i) {
      if (packages[i] == p) return names[i];
    }
    return p.Key();
  };

  std::cout << "\n=== Top-2 packages per ranking semantics (paper: EXP -> "
               "p4,p5; TKP -> p5,p4; MPO -> p5,p2) ===\n";
  TablePrinter top({"semantics", "rank 1", "rank 2", "scores"});
  for (auto sem : {ranking::Semantics::kExp, ranking::Semantics::kTkp,
                   ranking::Semantics::kMpo}) {
    ranking::RankingOptions opts;
    opts.sigma = 2;
    // EXP needs full per-sample lists so the estimator equals the exact
    // expectation on this tiny example (see rankers_test).
    opts.k = sem == ranking::Semantics::kExp ? 6 : 2;
    auto result = ranker.Rank(samples, sem, opts);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    std::string scores = TablePrinter::Fmt(result->packages[0].score, 3) +
                         " / " +
                         TablePrinter::Fmt(result->packages[1].score, 3);
    top.AddRow({ranking::SemanticsName(sem),
                name_of(result->packages[0].package),
                name_of(result->packages[1].package), scores});
  }
  top.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  topkpkg::bench::ParseBenchArgs(argc, argv);
  return Run();
}
