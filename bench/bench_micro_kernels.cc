// google-benchmark microbenchmarks for the hot kernels underneath the
// reproduction: density evaluation, aggregate maintenance, constraint
// checks, sampler draws and the package search itself.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "topkpkg/sampling/mcmc_sampler.h"
#include "topkpkg/sampling/rejection_sampler.h"
#include "topkpkg/sampling/sample_maintenance.h"
#include "topkpkg/sampling/sample_pool.h"
#include "topkpkg/topk/topk_pkg.h"

namespace {

using namespace topkpkg;  // NOLINT(build/namespaces)

void BM_MixtureLogPdf(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  prob::GaussianMixture gm = bench::MakePrior(m, 2, 1);
  Rng rng(2);
  Vec x = rng.UniformVector(m, -1.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gm.LogPdf(x));
  }
}
BENCHMARK(BM_MixtureLogPdf)->Arg(2)->Arg(5)->Arg(10);

void BM_AggregateStateAdd(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  auto wb = std::move(bench::MakeWorkbench("UNI", 100, m, 5, 3)).value();
  Rng rng(4);
  Vec row = rng.UniformVector(m, 0.0, 1.0);
  for (auto _ : state) {
    model::AggregateState s = wb.evaluator->NewState();
    for (int i = 0; i < 5; ++i) s.Add(row);
    benchmark::DoNotOptimize(s.Utility(row));
  }
}
BENCHMARK(BM_AggregateStateAdd)->Arg(2)->Arg(10);

void BM_ConstraintCheck(benchmark::State& state) {
  const std::size_t num_prefs = static_cast<std::size_t>(state.range(0));
  auto wb = std::move(bench::MakeWorkbench("UNI", 500, 5, 3, 5)).value();
  auto prefs = bench::MakePrefsOverPool(*wb.evaluator, 200, num_prefs, 3, 6);
  sampling::ConstraintChecker checker(prefs);
  Rng rng(7);
  Vec w = rng.UniformVector(5, -1.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.Violations(w));
  }
}
BENCHMARK(BM_ConstraintCheck)->Arg(10)->Arg(100)->Arg(1000);

void BM_RejectionDraw(benchmark::State& state) {
  const std::size_t feedback = static_cast<std::size_t>(state.range(0));
  auto wb = std::move(bench::MakeWorkbench("UNI", 500, 3, 3, 8)).value();
  auto prefs = bench::MakePrefsOverPool(*wb.evaluator, 200, feedback, 3, 9);
  sampling::ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = bench::MakePrior(3, 1, 10);
  sampling::RejectionSampler sampler(&prior, &checker);
  Rng rng(11);
  for (auto _ : state) {
    auto s = sampler.DrawOne(rng);
    if (s.ok()) benchmark::DoNotOptimize(s->w);
  }
}
BENCHMARK(BM_RejectionDraw)->Arg(1)->Arg(10)->Arg(30);

void BM_McmcDraw100(benchmark::State& state) {
  auto wb = std::move(bench::MakeWorkbench("UNI", 500, 5, 3, 12)).value();
  auto prefs = bench::MakePrefsOverPool(*wb.evaluator, 200, 20, 3, 13);
  sampling::ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = bench::MakePrior(5, 1, 14);
  sampling::McmcSampler sampler(&prior, &checker);
  Rng rng(15);
  for (auto _ : state) {
    auto s = sampler.Draw(100, rng);
    if (s.ok()) benchmark::DoNotOptimize(s->size());
  }
}
BENCHMARK(BM_McmcDraw100);

void BM_TopKPkgSearch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto wb = std::move(bench::MakeWorkbench("UNI", n, 4, 3, 16)).value();
  topk::TopKPkgSearch search(wb.evaluator.get());
  Rng rng(17);
  Vec w = rng.UniformVector(4, -1.0, 1.0);
  for (auto _ : state) {
    auto r = search.Search(w, 5);
    if (r.ok()) benchmark::DoNotOptimize(r->packages.size());
  }
}
BENCHMARK(BM_TopKPkgSearch)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MaintenanceHybrid(benchmark::State& state) {
  const std::size_t pool_size = static_cast<std::size_t>(state.range(0));
  Rng rng(18);
  std::vector<sampling::WeightedSample> samples;
  for (std::size_t i = 0; i < pool_size; ++i) {
    samples.push_back({rng.UniformVector(5, -1.0, 1.0), 1.0});
  }
  sampling::SamplePool pool(std::move(samples));
  (void)pool.sorted_lists();
  pref::Preference p =
      pref::Preference::FromVectors(rng.UniformVector(5, 0.0, 1.0),
                                    rng.UniformVector(5, 0.0, 1.0));
  for (auto _ : state) {
    auto r = sampling::FindViolators(pool, p,
                                     sampling::MaintenanceStrategy::kHybrid);
    benchmark::DoNotOptimize(r.violators.size());
  }
}
BENCHMARK(BM_MaintenanceHybrid)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
