// google-benchmark microbenchmarks for the hot kernels underneath the
// reproduction: density evaluation, aggregate maintenance, constraint
// checks, sampler draws and the package search itself.
//
// Accepts `--smoke` (stripped before google-benchmark sees the argv): runs
// every case with a tiny min-time so CI can use the binary as a seconds-long
// build-rot check, same contract as the paper-figure benches.

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "topkpkg/model/utility.h"
#include "topkpkg/sampling/mcmc_sampler.h"
#include "topkpkg/sampling/rejection_sampler.h"
#include "topkpkg/sampling/sample_maintenance.h"
#include "topkpkg/sampling/sample_pool.h"
#include "topkpkg/topk/topk_pkg.h"

namespace {

using namespace topkpkg;  // NOLINT(build/namespaces)

void BM_MixtureLogPdf(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  prob::GaussianMixture gm = bench::MakePrior(m, 2, 1);
  Rng rng(2);
  Vec x = rng.UniformVector(m, -1.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gm.LogPdf(x));
  }
}
BENCHMARK(BM_MixtureLogPdf)->Arg(2)->Arg(5)->Arg(10);

void BM_AggregateStateAdd(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  auto wb = std::move(bench::MakeWorkbench("UNI", 100, m, 5, 3)).value();
  Rng rng(4);
  Vec row = rng.UniformVector(m, 0.0, 1.0);
  for (auto _ : state) {
    model::AggregateState s = wb.evaluator->NewState();
    for (int i = 0; i < 5; ++i) s.Add(row);
    benchmark::DoNotOptimize(s.Utility(row));
  }
}
BENCHMARK(BM_AggregateStateAdd)->Arg(2)->Arg(10);

void BM_ConstraintCheck(benchmark::State& state) {
  const std::size_t num_prefs = static_cast<std::size_t>(state.range(0));
  auto wb = std::move(bench::MakeWorkbench("UNI", 500, 5, 3, 5)).value();
  auto prefs = bench::MakePrefsOverPool(*wb.evaluator, 200, num_prefs, 3, 6);
  sampling::ConstraintChecker checker(prefs);
  Rng rng(7);
  Vec w = rng.UniformVector(5, -1.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.Violations(w));
  }
}
BENCHMARK(BM_ConstraintCheck)->Arg(10)->Arg(100)->Arg(1000);

void BM_RejectionDraw(benchmark::State& state) {
  const std::size_t feedback = static_cast<std::size_t>(state.range(0));
  auto wb = std::move(bench::MakeWorkbench("UNI", 500, 3, 3, 8)).value();
  auto prefs = bench::MakePrefsOverPool(*wb.evaluator, 200, feedback, 3, 9);
  sampling::ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = bench::MakePrior(3, 1, 10);
  sampling::RejectionSampler sampler(&prior, &checker);
  Rng rng(11);
  for (auto _ : state) {
    auto s = sampler.DrawOne(rng);
    if (s.ok()) benchmark::DoNotOptimize(s->w);
  }
}
BENCHMARK(BM_RejectionDraw)->Arg(1)->Arg(10)->Arg(30);

void BM_McmcDraw100(benchmark::State& state) {
  auto wb = std::move(bench::MakeWorkbench("UNI", 500, 5, 3, 12)).value();
  auto prefs = bench::MakePrefsOverPool(*wb.evaluator, 200, 20, 3, 13);
  sampling::ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = bench::MakePrior(5, 1, 14);
  sampling::McmcSampler sampler(&prior, &checker);
  Rng rng(15);
  for (auto _ : state) {
    auto s = sampler.Draw(100, rng);
    if (s.ok()) benchmark::DoNotOptimize(s->size());
  }
}
BENCHMARK(BM_McmcDraw100);

// Algorithm 3 in isolation: one upper-exp bound evaluation over a non-empty
// state, the call the search kernel makes ~2x per expansion. Arg = slots.
void BM_UpperExp(benchmark::State& state) {
  const std::size_t slots = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 4;
  auto wb = std::move(bench::MakeWorkbench("UNI", 1000, m, slots + 1, 19))
                .value();
  model::AggregateState s = wb.evaluator->NewState();
  Rng rng(20);
  s.Add(rng.UniformVector(m, 0.0, 1.0));
  Vec tau(m);
  for (std::size_t f = 0; f < m; ++f) {
    tau[f] = wb.table->MaxFeatureValue(f);
  }
  Vec w = rng.UniformVector(m, -1.0, 1.0);
  const bool mono = model::IsSetMonotone(*wb.profile, w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topk::UpperExp(s, tau, w, slots, mono));
  }
}
BENCHMARK(BM_UpperExp)->Arg(1)->Arg(3)->Arg(7);

// The expandPackages inner loop (Algorithm 4): balanced positive weights
// over independent uniform features keep the composite τ loose, so Q+ stays
// populated and the run is expansion-dominated; a fixed sorted-list access
// budget makes iterations comparable. Reports steady-state expansions/s of
// the arena kernel.
void BM_ExpandPackages(benchmark::State& state) {
  const std::size_t phi = static_cast<std::size_t>(state.range(0));
  auto wb = std::move(bench::MakeWorkbench("UNI", 5000, 4, phi, 21)).value();
  topk::TopKPkgSearch search(wb.evaluator.get());
  const Vec w = {0.8, 0.7, 0.6, 0.5};
  topk::SearchLimits limits;
  limits.max_items_accessed = 2000;
  std::size_t expansions = 0;
  for (auto _ : state) {
    auto r = search.Search(w, 5, limits);
    if (r.ok()) expansions += r->expansions;
  }
  state.counters["expansions/s"] =
      benchmark::Counter(static_cast<double>(expansions),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExpandPackages)->Arg(2)->Arg(3);

void BM_TopKPkgSearch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto wb = std::move(bench::MakeWorkbench("UNI", n, 4, 3, 16)).value();
  topk::TopKPkgSearch search(wb.evaluator.get());
  Rng rng(17);
  Vec w = rng.UniformVector(4, -1.0, 1.0);
  for (auto _ : state) {
    auto r = search.Search(w, 5);
    if (r.ok()) benchmark::DoNotOptimize(r->packages.size());
  }
}
// Registered at runtime (see main): the bench-regression guard's cases can
// take a raised per-case --guard-min-time without touching the calibration
// benches' budget.

// The large-k "serve whole result pages" regime: same search as
// BM_TopKPkgSearch but k ∈ {100, 1000, 10000}, so the cost of maintaining
// the top-k collector dominates. A fixed sorted-list access budget keeps the
// expansion work comparable across k, isolating the collector. Registered
// under the BM_TopKPkgSearch/ prefix so CI's search-kernel JSON artifact
// (and the bench-regression guard) pick it up.
void BM_TopKPkgSearchLargeK(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  auto wb = std::move(bench::MakeWorkbench("UNI", 5000, 4, 3, 16)).value();
  topk::TopKPkgSearch search(wb.evaluator.get());
  const Vec w = {0.8, 0.7, 0.6, 0.5};
  topk::SearchLimits limits;
  limits.max_items_accessed = 1200;
  std::size_t collected = 0;
  for (auto _ : state) {
    auto r = search.Search(w, k, limits);
    if (r.ok()) collected = r->packages.size();
  }
  state.counters["collected"] = static_cast<double>(collected);
}

// A sample pool's worth of sign-coherent weight vectors (one access
// signature, the regime signature-sorted ranking chunks produce) through one
// SearchBatch call vs the same pool walked one scalar Search at a time. The
// access budget bounds each lane's walk so smoke stays seconds-long; the
// reported searches/s is what the bench-regression guard compares — batch
// width ≥ 128 must hold a ≥2x edge over the scalar pool loop.
std::vector<Vec> MakeCoherentPool(std::size_t width, std::size_t m) {
  Rng rng(23);
  std::vector<Vec> pool;
  pool.reserve(width);
  for (std::size_t j = 0; j < width; ++j) {
    Vec w(m);
    for (std::size_t f = 0; f < m; ++f) w[f] = 0.05 + 0.95 * rng.Uniform();
    pool.push_back(std::move(w));
  }
  return pool;
}

void BM_TopKPkgSearchBatch(benchmark::State& state) {
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  auto wb = std::move(bench::MakeWorkbench("UNI", 2000, 6, 3, 16)).value();
  topk::TopKPkgSearch search(wb.evaluator.get());
  const std::vector<Vec> pool = MakeCoherentPool(width, 6);
  std::vector<const Vec*> ptrs;
  for (const Vec& w : pool) ptrs.push_back(&w);
  topk::SearchLimits limits;
  limits.max_items_accessed = 300;
  std::size_t searches = 0;
  for (auto _ : state) {
    auto r = search.SearchBatch(ptrs, 5, limits);
    if (r.ok()) searches += r->size();
  }
  state.counters["searches/s"] = benchmark::Counter(
      static_cast<double>(searches), benchmark::Counter::kIsRate);
}

void BM_TopKPkgSearchScalarPool(benchmark::State& state) {
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  auto wb = std::move(bench::MakeWorkbench("UNI", 2000, 6, 3, 16)).value();
  topk::TopKPkgSearch search(wb.evaluator.get());
  const std::vector<Vec> pool = MakeCoherentPool(width, 6);
  topk::SearchLimits limits;
  limits.max_items_accessed = 300;
  std::size_t searches = 0;
  for (auto _ : state) {
    for (const Vec& w : pool) {
      auto r = search.Search(w, 5, limits);
      if (r.ok()) ++searches;
    }
  }
  state.counters["searches/s"] = benchmark::Counter(
      static_cast<double>(searches), benchmark::Counter::kIsRate);
}

void BM_MaintenanceHybrid(benchmark::State& state) {
  const std::size_t pool_size = static_cast<std::size_t>(state.range(0));
  Rng rng(18);
  std::vector<sampling::WeightedSample> samples;
  for (std::size_t i = 0; i < pool_size; ++i) {
    samples.push_back({rng.UniformVector(5, -1.0, 1.0), 1.0});
  }
  sampling::SamplePool pool(std::move(samples));
  (void)pool.sorted_lists();
  pref::Preference p =
      pref::Preference::FromVectors(rng.UniformVector(5, 0.0, 1.0),
                                    rng.UniformVector(5, 0.0, 1.0));
  for (auto _ : state) {
    auto r = sampling::FindViolators(pool, p,
                                     sampling::MaintenanceStrategy::kHybrid);
    benchmark::DoNotOptimize(r.violators.size());
  }
}
BENCHMARK(BM_MaintenanceHybrid)->Arg(1000)->Arg(10000);

// The CI bench-regression guard diffs the BM_TopKPkgSearch cases against a
// committed baseline. Smoke noise on shared runners is the guard's main
// false-fail source, so those cases — and only those — can run with a
// raised per-case measurement window (--guard-min-time=SECONDS) while the
// machine-factor calibration benches keep the cheap smoke budget.
void RegisterGuardedBenches(double guard_min_time) {
  auto* search =
      benchmark::RegisterBenchmark("BM_TopKPkgSearch", BM_TopKPkgSearch);
  search->Arg(1000)->Arg(10000)->Arg(100000);
  auto* large_k = benchmark::RegisterBenchmark("BM_TopKPkgSearch/large_k",
                                               BM_TopKPkgSearchLargeK);
  large_k->Arg(100)->Arg(1000)->Arg(10000);
  auto* batch = benchmark::RegisterBenchmark("BM_TopKPkgSearchBatch",
                                             BM_TopKPkgSearchBatch);
  batch->Arg(16)->Arg(128)->Arg(1024);
  auto* scalar_pool = benchmark::RegisterBenchmark(
      "BM_TopKPkgSearchBatch/scalar_pool", BM_TopKPkgSearchScalarPool);
  scalar_pool->Arg(16)->Arg(128)->Arg(1024);
  if (guard_min_time > 0.0) {
    search->MinTime(guard_min_time);
    large_k->MinTime(guard_min_time);
    batch->MinTime(guard_min_time);
    scalar_pool->MinTime(guard_min_time);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Strip `--smoke` (google-benchmark rejects unknown flags) and translate
  // it into a tiny per-case min-time appended last, so it also overrides an
  // earlier explicit --benchmark_min_time. `--guard-min-time=S` (also ours)
  // raises the guarded BM_TopKPkgSearch cases' window independently of that
  // global smoke budget.
  static char smoke_min_time[] = "--benchmark_min_time=0.01";
  std::vector<char*> args;
  bool smoke = false;
  double guard_min_time = 0.0;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--guard-min-time=", 17) == 0) {
      guard_min_time = std::atof(argv[i] + 17);
    } else {
      args.push_back(argv[i]);
    }
  }
  if (smoke) args.push_back(smoke_min_time);
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  RegisterGuardedBenches(guard_min_time);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
