// Reproduces Figure 4 (Sec. 5.1): how rejection, importance and MCMC
// sampling generate 100 valid 2-dimensional weight samples given 5000
// candidate packages and 2 random preferences. The paper's scatter plots
// become acceptance statistics plus a printable sample of points; the
// qualitative claim is that the feedback-aware samplers waste far fewer
// proposals.

#include <iostream>

#include "bench_common.h"

namespace {

using namespace topkpkg;  // NOLINT(build/namespaces)
using bench::MakePrefsOverPool;
using bench::MakePrior;
using bench::MakeWorkbench;
using bench::Scaled;

int Run() {
  const std::size_t kItems = Scaled(1000);
  const std::size_t kPackages = Scaled(5000);
  const std::size_t kValidSamples = 100;

  auto wb = MakeWorkbench("UNI", kItems, 2, 3, /*seed=*/41);
  if (!wb.ok()) {
    std::cerr << wb.status() << "\n";
    return 1;
  }
  auto prefs = MakePrefsOverPool(*wb->evaluator, kPackages, 2, 3, 42);
  sampling::ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = MakePrior(2, 1, 43);

  std::cout << "Figure 4: 2 features, " << kPackages
            << " candidate packages, 2 preferences, " << kValidSamples
            << " valid samples per sampler\n\n";

  TablePrinter t({"sampler", "proposed", "accepted", "rejected(constraint)",
                  "rejected(box)", "acceptance rate"});
  for (auto kind :
       {recsys::SamplerKind::kRejection, recsys::SamplerKind::kImportance,
        recsys::SamplerKind::kMcmc}) {
    Rng rng(44);
    sampling::SampleStats stats;
    auto samples =
        bench::DrawByKind(kind, prior, checker, kValidSamples, rng, &stats);
    if (!samples.ok()) {
      std::cerr << recsys::SamplerKindName(kind) << ": " << samples.status()
                << "\n";
      return 1;
    }
    t.AddRow({recsys::SamplerKindName(kind), std::to_string(stats.proposed),
              std::to_string(stats.accepted),
              std::to_string(stats.rejected_constraint),
              std::to_string(stats.rejected_box),
              TablePrinter::Fmt(stats.AcceptanceRate(), 3)});

    std::cout << recsys::SamplerKindName(kind)
              << " first 5 accepted samples (w0, w1, importance weight):\n";
    for (std::size_t i = 0; i < 5 && i < samples->size(); ++i) {
      std::cout << "  (" << TablePrinter::Fmt((*samples)[i].w[0], 3) << ", "
                << TablePrinter::Fmt((*samples)[i].w[1], 3) << ")  q="
                << TablePrinter::Fmt((*samples)[i].weight, 3) << "\n";
    }
    // All accepted samples must satisfy both preferences.
    for (const auto& s : *samples) {
      if (!checker.IsValid(s.w)) {
        std::cerr << "BUG: invalid sample escaped the sampler\n";
        return 1;
      }
    }
  }
  std::cout << "\n";
  t.Print(std::cout);
  std::cout << "\nPaper shape check: RS acceptance << IS acceptance, and the "
               "MCMC chain only wastes proposals while bootstrapping.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  topkpkg::bench::ParseBenchArgs(argc, argv);
  return Run();
}
