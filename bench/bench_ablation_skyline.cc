// Motivation ablation (Sec. 1 / Sec. 6): the alternatives to utility-based
// top-k packages are impractical.
//   (1) Skyline packages [20, 29]: even small datasets yield hundreds or
//       thousands of Pareto-optimal fixed-size packages.
//   (2) Hard constraints [27]: the best reachable quality is very sensitive
//       to the budget, so a user who cannot state an exact budget gets
//       either sub-optimal packages or an unconstrained flood.

#include <iostream>

#include "bench_common.h"
#include "topkpkg/baseline/hard_constraint.h"
#include "topkpkg/baseline/skyline.h"
#include "topkpkg/data/generators.h"

namespace {

using namespace topkpkg;  // NOLINT(build/namespaces)
using bench::Scaled;

int Run() {
  std::cout << "=== (1) Number of skyline packages (size-2 packages, "
               "4 features, all maximized) ===\n";
  TablePrinter t({"dataset", "#items", "#size-2 packages",
                  "#skyline packages", "#skyline items"});
  const std::vector<bool> kMaximize(4, true);
  for (const std::string dataset : {"UNI", "COR", "ANT"}) {
    for (std::size_t n : {50u, 100u, 200u}) {
      auto wb = bench::MakeWorkbench(dataset, n, 4, 2, 81);
      if (!wb.ok()) {
        std::cerr << wb.status() << "\n";
        return 1;
      }
      auto sky = baseline::SkylinePackages(*wb->evaluator, 2, kMaximize);
      if (!sky.ok()) {
        std::cerr << sky.status() << "\n";
        return 1;
      }
      auto sky_items = baseline::SkylineItems(*wb->table, kMaximize);
      t.AddRow({dataset, std::to_string(n), std::to_string(n * (n - 1) / 2),
                std::to_string(sky->size()),
                std::to_string(sky_items.size())});
    }
  }
  t.Print(std::cout);
  std::cout << "\nShape check: ANT yields far more skyline packages than "
               "COR/UNI, and counts grow into the hundreds/thousands — too "
               "many to show a user (the paper's motivation).\n";

  std::cout << "\n=== (2) Hard-constraint baseline budget sensitivity "
               "(maximize avg rating s.t. total cost <= B) ===\n";
  // Correlated data: quality costs money, so the budget truly binds (with
  // independent features a cheap high-quality item always sneaks in).
  auto table =
      std::move(data::GenerateCorrelated(Scaled(200), 2, 82)).value();
  auto profile = std::move(model::Profile::Parse("sum,avg")).value();
  model::PackageEvaluator evaluator(&table, &profile, 3);
  TablePrinter h({"budget B", "exact best avg rating", "greedy avg rating",
                  "package size (exact)"});
  for (double budget : {0.05, 0.1, 0.2, 0.5, 1.0, 2.0}) {
    baseline::HardConstraintQuery q;
    q.objective_feature = 1;
    q.budget_feature = 0;
    q.budget = budget;
    auto exact = baseline::SolveHardConstraintExact(evaluator, q, 2'000'000);
    auto greedy = baseline::SolveHardConstraintGreedy(evaluator, q);
    if (!exact.ok()) {
      h.AddRow({TablePrinter::Fmt(budget, 2), "infeasible", "-", "-"});
      continue;
    }
    h.AddRow({TablePrinter::Fmt(budget, 2),
              TablePrinter::Fmt(exact->utility, 3),
              greedy.ok() ? TablePrinter::Fmt(greedy->utility, 3) : "-",
              std::to_string(exact->package.size())});
  }
  h.Print(std::cout);
  std::cout << "\nShape check: quality climbs steeply with the budget — a "
               "user who guesses B too low is locked into sub-optimal "
               "packages, which is the paper's argument for learning soft "
               "trade-offs instead.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  topkpkg::bench::ParseBenchArgs(argc, argv);
  return Run();
}
