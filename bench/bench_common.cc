#include "bench_common.h"

#include <algorithm>
#include <cstdlib>

#include "topkpkg/data/generators.h"
#include "topkpkg/data/nba_like.h"
#include "topkpkg/sampling/importance_sampler.h"
#include "topkpkg/sampling/mcmc_sampler.h"
#include "topkpkg/sampling/rejection_sampler.h"

namespace topkpkg::bench {

namespace {
double scale_override = 0.0;  // > 0 wins over the environment.
}  // namespace

void ParseBenchArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") scale_override = 0.05;
  }
}

double BenchScale() {
  if (scale_override > 0.0) return scale_override;
  static const double scale = [] {
    const char* env = std::getenv("TOPKPKG_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
  }();
  return scale;
}

std::size_t Scaled(std::size_t v) {
  double scaled = static_cast<double>(v) * BenchScale();
  return std::max<std::size_t>(1, static_cast<std::size_t>(scaled + 0.5));
}

model::Profile DefaultProfile(std::size_t m) {
  std::vector<model::AggregateOp> ops;
  ops.reserve(m);
  for (std::size_t f = 0; f < m; ++f) {
    ops.push_back(f % 2 == 0 ? model::AggregateOp::kSum
                             : model::AggregateOp::kAvg);
  }
  return std::move(model::Profile::Create(std::move(ops))).value();
}

Result<Workbench> MakeWorkbench(const std::string& dataset, std::size_t n,
                                std::size_t m, std::size_t phi,
                                std::uint64_t seed) {
  Workbench w;
  if (dataset == "NBA") {
    TOPKPKG_ASSIGN_OR_RETURN(model::ItemTable table,
                             data::GenerateNbaLikeExperiment(m, seed));
    w.table = std::make_unique<model::ItemTable>(std::move(table));
  } else {
    data::SyntheticKind kind;
    if (dataset == "UNI") {
      kind = data::SyntheticKind::kUniform;
    } else if (dataset == "PWR") {
      kind = data::SyntheticKind::kPowerLaw;
    } else if (dataset == "COR") {
      kind = data::SyntheticKind::kCorrelated;
    } else if (dataset == "ANT") {
      kind = data::SyntheticKind::kAntiCorrelated;
    } else {
      return Status::InvalidArgument("unknown dataset " + dataset);
    }
    TOPKPKG_ASSIGN_OR_RETURN(model::ItemTable table,
                             data::GenerateSynthetic(kind, n, m, seed));
    w.table = std::make_unique<model::ItemTable>(std::move(table));
  }
  w.profile = std::make_unique<model::Profile>(DefaultProfile(m));
  w.evaluator = std::make_unique<model::PackageEvaluator>(w.table.get(),
                                                          w.profile.get(), phi);
  return w;
}

prob::GaussianMixture MakePrior(std::size_t m, std::size_t num_gaussians,
                                std::uint64_t seed) {
  Rng rng(seed);
  return prob::GaussianMixture::Random(m, num_gaussians, 0.45, rng);
}

std::vector<pref::Preference> MakePrefsOverPool(
    const model::PackageEvaluator& evaluator, std::size_t pool_size,
    std::size_t count, std::size_t max_size, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = evaluator.table().num_items();
  Vec hidden = rng.UniformVector(evaluator.profile().num_features(),
                                 -1.0, 1.0);
  // Pre-generate the package pool and its feature vectors once.
  std::vector<model::Package> pool;
  std::vector<Vec> vecs;
  pool.reserve(pool_size);
  vecs.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    pool.push_back(pref::RandomPackage(n, max_size, rng));
    vecs.push_back(evaluator.FeatureVector(pool.back()));
  }
  std::vector<pref::Preference> prefs;
  prefs.reserve(count);
  while (prefs.size() < count) {
    std::size_t a = rng.UniformInt(pool_size);
    std::size_t b = rng.UniformInt(pool_size);
    if (a == b) continue;
    double ua = Dot(vecs[a], hidden);
    double ub = Dot(vecs[b], hidden);
    if (ua == ub) continue;
    if (ua < ub) std::swap(a, b);
    prefs.push_back(pref::Preference::FromVectors(
        vecs[a], vecs[b], pool[a].Key(), pool[b].Key()));
  }
  return prefs;
}

std::vector<pref::Preference> MakeReachablePrefs(
    const model::PackageEvaluator& evaluator,
    const prob::GaussianMixture& prior, std::size_t pool_size,
    std::size_t count, std::size_t max_size, std::uint64_t seed,
    std::size_t min_hits) {
  for (std::uint64_t attempt = 0; attempt < 64; ++attempt) {
    auto prefs = MakePrefsOverPool(evaluator, pool_size, count, max_size,
                                   seed + 7919 * attempt);
    Rng rng(seed + attempt);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < 2000 && hits < min_hits; ++i) {
      Vec w = prior.Sample(rng);
      if (InBox(w, -1.0, 1.0) && pref::SatisfiesAll(w, prefs)) ++hits;
    }
    if (hits >= min_hits) return prefs;
  }
  // Give up gracefully: an unconstrained workload (benchmarks will report
  // near-zero rejection cost rather than hanging).
  return {};
}

pref::PreferenceSet MakePreferenceSetOverPool(
    const model::PackageEvaluator& evaluator, std::size_t pool_size,
    std::size_t count, std::size_t max_size, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = evaluator.table().num_items();
  Vec hidden = rng.UniformVector(evaluator.profile().num_features(),
                                 -1.0, 1.0);
  std::vector<model::Package> pool;
  std::vector<Vec> vecs;
  pool.reserve(pool_size);
  vecs.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    pool.push_back(pref::RandomPackage(n, max_size, rng));
    vecs.push_back(evaluator.FeatureVector(pool.back()));
  }
  pref::PreferenceSet set;
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < count && attempts < 20 * count) {
    ++attempts;
    std::size_t a = rng.UniformInt(pool_size);
    std::size_t b = rng.UniformInt(pool_size);
    if (a == b) continue;
    double ua = Dot(vecs[a], hidden);
    double ub = Dot(vecs[b], hidden);
    if (ua == ub) continue;
    if (ua < ub) std::swap(a, b);
    std::size_t before = set.num_edges();
    // Orientation by a fixed hidden w keeps the graph acyclic, so Add only
    // no-ops on duplicates.
    (void)set.Add(vecs[a], vecs[b], pool[a].Key(), pool[b].Key());
    if (set.num_edges() > before) ++added;
  }
  return set;
}

Result<std::vector<sampling::WeightedSample>> DrawByKind(
    recsys::SamplerKind kind, const prob::GaussianMixture& prior,
    const sampling::ConstraintChecker& checker, std::size_t n, Rng& rng,
    sampling::SampleStats* stats) {
  switch (kind) {
    case recsys::SamplerKind::kRejection: {
      sampling::RejectionSampler sampler(&prior, &checker);
      return sampler.Draw(n, rng, stats);
    }
    case recsys::SamplerKind::kImportance: {
      TOPKPKG_ASSIGN_OR_RETURN(
          sampling::ImportanceSampler sampler,
          sampling::ImportanceSampler::Create(&prior, &checker));
      return sampler.Draw(n, rng, stats);
    }
    case recsys::SamplerKind::kMcmc: {
      sampling::McmcSampler sampler(&prior, &checker);
      return sampler.Draw(n, rng, stats);
    }
  }
  return Status::InvalidArgument("unknown sampler kind");
}

const std::vector<std::string>& AllDatasets() {
  static const std::vector<std::string>* const kDatasets =
      new std::vector<std::string>{"UNI", "PWR", "COR", "ANT", "NBA"};
  return *kDatasets;
}

}  // namespace topkpkg::bench
