#ifndef TOPKPKG_BENCH_BENCH_COMMON_H_
#define TOPKPKG_BENCH_BENCH_COMMON_H_

// Shared harness for the paper-reproduction benchmarks (DESIGN.md's
// per-experiment index). Every bench prints paper-style series; workload
// sizes scale with the TOPKPKG_BENCH_SCALE environment variable (default 1,
// e.g. 5 to approach the paper's full 100k-tuple settings, 0.2 for smoke
// runs).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "topkpkg/common/random.h"
#include "topkpkg/common/status.h"
#include "topkpkg/common/table_printer.h"
#include "topkpkg/common/timer.h"
#include "topkpkg/model/package.h"
#include "topkpkg/obs/metrics.h"
#include "topkpkg/pref/preference.h"
#include "topkpkg/pref/preference_set.h"
#include "topkpkg/prob/gaussian_mixture.h"
#include "topkpkg/recsys/recommender.h"
#include "topkpkg/sampling/constraint_checker.h"
#include "topkpkg/sampling/sample.h"

namespace topkpkg::bench {

// Latency percentile recorder for bench reporting, backed by the obs
// histogram so benches read quantiles through the same nearest-rank
// extraction the serving metrics export — no private sort-the-vector
// percentile code to drift from it. Bucketed quantiles overestimate the
// true order statistic by at most 25% (exact at the observed min/max),
// which is inside the run-to-run noise of every bench here.
class LatencyRecorder {
 public:
  void RecordSeconds(double s) { hist_.Observe(s); }
  void RecordMs(double ms) { hist_.Observe(ms / 1e3); }
  double QuantileMs(double q) const { return hist_.Quantile(q) * 1e3; }
  std::uint64_t count() const { return hist_.count(); }

 private:
  obs::Histogram hist_;
};

// A dataset + profile + evaluator bundle with stable ownership.
struct Workbench {
  std::unique_ptr<model::ItemTable> table;
  std::unique_ptr<model::Profile> profile;
  std::unique_ptr<model::PackageEvaluator> evaluator;
};

// Parses the CLI flags shared by every bench main. `--smoke` forces a tiny
// workload scale (overriding TOPKPKG_BENCH_SCALE) so CI can run every bench
// binary as a seconds-long build-rot check. Unknown flags are ignored.
void ParseBenchArgs(int argc, char** argv);

// Workload scale factor: the --smoke override if set, else
// TOPKPKG_BENCH_SCALE (default 1.0).
double BenchScale();

// max(1, round(v * BenchScale())).
std::size_t Scaled(std::size_t v);

// The experimental aggregate profile: alternating sum/avg over m features
// (the paper's motivating cost/quality mix generalized to m dimensions).
model::Profile DefaultProfile(std::size_t m);

// Builds a dataset by name: UNI, PWR, COR, ANT (n×m synthetic) or NBA (3705
// synthetic players, m features selected from 17). `n` is ignored for NBA.
Result<Workbench> MakeWorkbench(const std::string& dataset, std::size_t n,
                                std::size_t m, std::size_t phi,
                                std::uint64_t seed);

// Mixture-of-Gaussians prior with `num_gaussians` components over [-1,1]^m.
prob::GaussianMixture MakePrior(std::size_t m, std::size_t num_gaussians,
                                std::uint64_t seed);

// `count` pairwise preferences drawn over a pool of `pool_size` random
// packages (package reuse creates the transitivity redundancy that Sec. 3.3
// prunes), oriented by a hidden random weight vector so they are always
// jointly satisfiable.
std::vector<pref::Preference> MakePrefsOverPool(
    const model::PackageEvaluator& evaluator, std::size_t pool_size,
    std::size_t count, std::size_t max_size, std::uint64_t seed);

// Same workload as MakePrefsOverPool but materialized as a PreferenceSet
// DAG (for experiments that exercise the Sec. 3.3 transitive reduction).
pref::PreferenceSet MakePreferenceSetOverPool(
    const model::PackageEvaluator& evaluator, std::size_t pool_size,
    std::size_t count, std::size_t max_size, std::uint64_t seed);

// Like MakePrefsOverPool, but retries different orientations until the
// resulting valid region is actually reachable from `prior` (at least
// `min_hits` of 2000 prior draws satisfy all constraints). Keeps
// rejection-sampling benchmarks from degenerating into timeout lotteries
// when a random hidden weight lands far from the prior's mass.
std::vector<pref::Preference> MakeReachablePrefs(
    const model::PackageEvaluator& evaluator,
    const prob::GaussianMixture& prior, std::size_t pool_size,
    std::size_t count, std::size_t max_size, std::uint64_t seed,
    std::size_t min_hits = 5);

// Draws `n` valid samples with the requested sampler (RS/IS/MS).
Result<std::vector<sampling::WeightedSample>> DrawByKind(
    recsys::SamplerKind kind, const prob::GaussianMixture& prior,
    const sampling::ConstraintChecker& checker, std::size_t n, Rng& rng,
    sampling::SampleStats* stats);

// All five evaluation datasets of Sec. 5.
const std::vector<std::string>& AllDatasets();

}  // namespace topkpkg::bench

#endif  // TOPKPKG_BENCH_BENCH_COMMON_H_
