// Reproduces Figure 7 (Sec. 5.5): sample maintenance under new feedback.
//   (a) Cost of finding the pool samples invalidated by one new preference,
//       with results bucketed by how many samples actually violate it:
//       naive scan vs TA-based scan vs the hybrid of Algorithm 1.
//   (b) Cost ratio of the TA and hybrid methods relative to the naive scan
//       as the hybrid's fallback parameter γ varies.

#include <algorithm>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "topkpkg/sampling/sample_maintenance.h"
#include "topkpkg/sampling/sample_pool.h"

namespace {

using namespace topkpkg;  // NOLINT(build/namespaces)
using bench::Scaled;
using sampling::FindViolators;
using sampling::MaintenanceStrategy;

// The realistic maintenance scenario (Sec. 3.4): the pool already encodes
// the user's previous feedback — it was sampled from the constrained
// posterior — and new preferences come from the same user. Most new
// (consistent) preferences therefore invalidate few samples, while the
// occasional mistaken click (reversed orientation) invalidates many; this
// is what populates the different violator-count buckets of Fig. 7(a).
struct Scenario {
  sampling::SamplePool pool;
  std::vector<pref::Preference> new_prefs;
};

Scenario MakeScenario(std::size_t pool_size, std::size_t dim,
                      std::size_t num_prefs, uint64_t seed) {
  Rng rng(seed);
  Vec hidden = rng.UniformVector(dim, -1.0, 1.0);
  // Initial feedback the pool already satisfies.
  std::vector<pref::Preference> initial;
  auto random_pair = [&](Vec* a, Vec* b) {
    *a = rng.UniformVector(dim, 0.0, 1.0);
    *b = rng.UniformVector(dim, 0.0, 1.0);
  };
  while (initial.size() < 10) {
    Vec a, b;
    random_pair(&a, &b);
    double ua = Dot(a, hidden);
    double ub = Dot(b, hidden);
    if (ua == ub) continue;
    initial.push_back(ua > ub ? pref::Preference::FromVectors(a, b)
                              : pref::Preference::FromVectors(b, a));
  }
  // Pool: a concentrated posterior proxy — after many rounds of feedback
  // the sample cloud occupies a small neighbourhood of the user's true
  // weight vector (this concentration is exactly why the TA scan can stop
  // early on consistent new feedback). Drawn as jittered copies of the
  // hidden weight filtered through the initial constraints.
  std::vector<sampling::WeightedSample> samples;
  samples.reserve(pool_size);
  while (samples.size() < pool_size) {
    Vec w(dim);
    double shrink = rng.Uniform(0.7, 1.0);
    for (std::size_t f = 0; f < dim; ++f) {
      w[f] = std::clamp(hidden[f] * shrink + rng.Gaussian(0.0, 0.08),
                        -1.0, 1.0);
    }
    if (pref::SatisfiesAll(w, initial)) {
      samples.push_back(sampling::WeightedSample{std::move(w), 1.0});
    }
  }
  // New feedback: mostly consistent with the same hidden taste, with an
  // 85%/15% correct/mistaken click mix (the Sec. 7 noise regime).
  Scenario scenario{sampling::SamplePool(std::move(samples)), {}};
  while (scenario.new_prefs.size() < num_prefs) {
    Vec a, b;
    random_pair(&a, &b);
    double ua = Dot(a, hidden);
    double ub = Dot(b, hidden);
    if (ua == ub) continue;
    bool correct = rng.Bernoulli(0.85);
    if ((ua > ub) == correct) {
      scenario.new_prefs.push_back(pref::Preference::FromVectors(a, b));
    } else {
      scenario.new_prefs.push_back(pref::Preference::FromVectors(b, a));
    }
  }
  return scenario;
}

int Run() {
  const std::size_t kPool = Scaled(10000);
  const std::size_t kDim = 5;
  const std::size_t kPrefs = Scaled(1000);
  Scenario scenario = MakeScenario(kPool, kDim, kPrefs, 51);
  sampling::SamplePool& pool = scenario.pool;
  // Force the sorted lists to be built up front (they are shared state, as
  // in a long-lived recommender).
  (void)pool.sorted_lists();

  std::cout << "Figure 7(a): maintenance cost by number of violating "
               "samples (pool=" << kPool << ", " << kPrefs
            << " random preferences)\n\n";

  const std::vector<std::size_t> kBuckets = {0, 1, 5, 20, 50, 200, 1000};
  struct Cell {
    double naive = 0.0;
    double ta = 0.0;
    double hybrid = 0.0;
    std::size_t count = 0;
  };
  std::map<std::size_t, Cell> cells;

  for (std::size_t i = 0; i < kPrefs; ++i) {
    const pref::Preference& p = scenario.new_prefs[i];

    Timer t_naive;
    auto naive = FindViolators(pool, p, MaintenanceStrategy::kNaive);
    double naive_s = t_naive.ElapsedSeconds();
    Timer t_ta;
    auto ta = FindViolators(pool, p, MaintenanceStrategy::kTa);
    double ta_s = t_ta.ElapsedSeconds();
    Timer t_hybrid;
    auto hybrid =
        FindViolators(pool, p, MaintenanceStrategy::kHybrid, 0.025);
    double hybrid_s = t_hybrid.ElapsedSeconds();
    if (ta.violators.size() != naive.violators.size() ||
        hybrid.violators.size() != naive.violators.size()) {
      std::cerr << "BUG: strategies disagree on violator count\n";
      return 1;
    }

    // Bucket = smallest label >= violator count.
    std::size_t bucket = kBuckets.back();
    for (std::size_t b : kBuckets) {
      if (naive.violators.size() <= b) {
        bucket = b;
        break;
      }
    }
    Cell& c = cells[bucket];
    c.naive += naive_s;
    c.ta += ta_s;
    c.hybrid += hybrid_s;
    ++c.count;
  }

  TablePrinter t({"max #violators", "#prefs", "naive (ms avg)", "TA (ms avg)",
                  "hybrid (ms avg)"});
  for (std::size_t b : kBuckets) {
    auto it = cells.find(b);
    if (it == cells.end() || it->second.count == 0) {
      t.AddRow({std::to_string(b), "0", "-", "-", "-"});
      continue;
    }
    const Cell& c = it->second;
    double n = static_cast<double>(c.count);
    t.AddRow({std::to_string(b), std::to_string(c.count),
              TablePrinter::Fmt(1e3 * c.naive / n, 3),
              TablePrinter::Fmt(1e3 * c.ta / n, 3),
              TablePrinter::Fmt(1e3 * c.hybrid / n, 3)});
  }
  t.Print(std::cout);

  std::cout << "\nFigure 7(b): cost ratio vs naive while varying gamma\n\n";
  TablePrinter g({"gamma", "TA cost / naive", "hybrid cost / naive"});
  const std::vector<pref::Preference>& prefs = scenario.new_prefs;
  double naive_total = 0.0;
  double ta_total = 0.0;
  {
    Timer timer;
    for (const auto& p : prefs) {
      (void)FindViolators(pool, p, MaintenanceStrategy::kNaive);
    }
    naive_total = timer.ElapsedSeconds();
    Timer ta_timer;
    for (const auto& p : prefs) {
      (void)FindViolators(pool, p, MaintenanceStrategy::kTa);
    }
    ta_total = ta_timer.ElapsedSeconds();
  }
  for (double gamma : {0.0, 0.025, 0.05, 0.075, 0.1}) {
    Timer timer;
    for (const auto& p : prefs) {
      (void)FindViolators(pool, p, MaintenanceStrategy::kHybrid, gamma);
    }
    double hybrid_total = timer.ElapsedSeconds();
    g.AddRow({TablePrinter::Fmt(gamma, 3),
              TablePrinter::Fmt(ta_total / naive_total, 3),
              TablePrinter::Fmt(hybrid_total / naive_total, 3)});
  }
  g.Print(std::cout);
  std::cout << "\nPaper shape checks: TA wins when few samples violate and "
               "deteriorates sharply when many do; the hybrid tracks the "
               "naive cost within a small overhead tunable by gamma.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  topkpkg::bench::ParseBenchArgs(argc, argv);
  return Run();
}
