// store_fsck — dumps and verifies a segmented session store.
//
// Given a store *directory*, walks every segment log in id order in scan
// mode (CRC failures are counted, not fatal), rebuilds the keydir the way
// SessionStore::Open would, and cross-checks each hint file against the
// scan: a hint must decode, match its segment's size, and list exactly the
// latest event per key plus every whole-session tombstone. Stale or absent
// hints are notes (the engine scan-falls-back and rewrites them); a hint
// that *disagrees* with its segment's contents is corruption.
//
// Given a regular file, falls back to the pre-segmented single-log check so
// old stores remain inspectable.
//
// Exit codes: 0 = clean, 1 = unreadable/usage, 2 = integrity findings
// (CRC failures, hint/scan disagreement, or a torn tail unless
// --allow-torn-tail — recovery truncates torn tails, so a store checked
// after a clean open never has one).
//
// Usage: store_fsck [--verbose] [--allow-torn-tail] <store-dir-or-file>
//
// CI runs it both against the store example_durable_session writes and
// after every store_crashgen crash-recovery cycle, so the on-disk format
// the library produces — including mid-crash layouts — is fsck-verified
// every build.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "topkpkg/storage/codec.h"
#include "topkpkg/storage/hint_file.h"
#include "topkpkg/storage/record_log.h"
#include "topkpkg/storage/session_store.h"

namespace {

using topkpkg::Result;
using topkpkg::Status;
using topkpkg::storage::HintEvent;
using topkpkg::storage::HintFileContents;
using topkpkg::storage::kFileHeaderSize;
using topkpkg::storage::kSessionTombstone;
using topkpkg::storage::kTombstoneBit;
using topkpkg::storage::LoadHintFile;
using topkpkg::storage::ParseSegmentFileName;
using topkpkg::storage::Record;
using topkpkg::storage::RecordKind;
using topkpkg::storage::RecordLogReader;
using topkpkg::storage::ReplayStats;
using topkpkg::storage::SegmentFileName;
using topkpkg::storage::SegmentHintName;

const char* KindName(RecordKind kind) {
  if (kind == kSessionTombstone) return "session-tombstone";
  if ((kind & kTombstoneBit) != 0) return "tombstone";
  // Checkpoint state records alternate between the base kinds and
  // base + kKindGenSlotOffset (even-sequence generation slot); both slots
  // carry the same payload format.
  const bool alt = kind > topkpkg::storage::kKindGenSlotOffset &&
                   kind <= topkpkg::storage::kKindGenSlotOffset +
                               topkpkg::storage::kKindRoundHistory;
  const RecordKind base =
      alt ? kind - topkpkg::storage::kKindGenSlotOffset : kind;
  switch (base) {
    case topkpkg::storage::kKindPreferenceSet:
      return alt ? "preference-set (alt slot)" : "preference-set";
    case topkpkg::storage::kKindSamplePool:
      return alt ? "sample-pool (alt slot)" : "sample-pool";
    case topkpkg::storage::kKindTopListCache:
      return alt ? "top-list-cache (alt slot)" : "top-list-cache";
    case topkpkg::storage::kKindRoundHistory:
      return alt ? "round-history (alt slot)" : "round-history";
    case topkpkg::storage::kKindRecommenderMeta:
      return "recommender-meta";
    default:
      return "unknown";
  }
}

using Key = std::pair<std::uint64_t, RecordKind>;

// Shadow of the store's in-memory index: latest live record per key, with
// the segment it lives in (for the dead-byte split).
struct KeydirShadow {
  std::map<Key, std::uint64_t> live;  // key -> stored size

  void Apply(const Record& rec) {
    if (rec.kind == kSessionTombstone) {
      auto it = live.lower_bound({rec.session_id, 0});
      while (it != live.end() && it->first.first == rec.session_id) {
        it = live.erase(it);
      }
    } else if ((rec.kind & kTombstoneBit) != 0) {
      live.erase({rec.session_id, rec.kind & ~kTombstoneBit});
    } else {
      live[{rec.session_id, rec.kind}] = rec.StoredSize();
    }
  }
};

// What a correct hint for the scanned segment must contain — the same
// latest-event ∪ session-tombstone set SessionStore::PendingHint tracks.
struct ExpectedHint {
  std::map<Key, HintEvent> latest;
  std::vector<HintEvent> session_tombs;

  void Track(const Record& rec) {
    HintEvent ev{rec.session_id, rec.kind, rec.offset, rec.StoredSize()};
    if (rec.kind == kSessionTombstone) {
      session_tombs.push_back(ev);
      return;
    }
    latest[{rec.session_id, rec.kind & ~kTombstoneBit}] = ev;
  }

  std::vector<HintEvent> Collect() const {
    std::vector<HintEvent> out;
    for (const auto& [key, ev] : latest) out.push_back(ev);
    out.insert(out.end(), session_tombs.begin(), session_tombs.end());
    std::sort(out.begin(), out.end(),
              [](const HintEvent& a, const HintEvent& b) {
                return a.offset < b.offset;
              });
    return out;
  }
};

bool SameEvent(const HintEvent& a, const HintEvent& b) {
  return a.session_id == b.session_id && a.kind == b.kind &&
         a.offset == b.offset && a.stored_size == b.stored_size;
}

struct Findings {
  std::size_t crc_failures = 0;
  std::size_t torn_tails = 0;
  std::size_t hint_mismatches = 0;
  std::size_t notes = 0;  // Benign: stale/invalid hints, leftover .compact.
};

int FsckLegacyFile(const std::string& path, bool verbose,
                   bool allow_torn_tail);

int FsckDirectory(const std::string& path, bool verbose,
                  bool allow_torn_tail) {
  namespace fs = std::filesystem;

  // Inventory the directory: segments, hints, the LOCK file, leftovers.
  std::vector<std::uint64_t> ids;
  std::map<std::uint64_t, bool> has_hint;
  Findings findings;
  bool saw_lock = false;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(path, ec)) {
    const std::string name = entry.path().filename().string();
    if (name == "LOCK") {
      saw_lock = true;
      continue;
    }
    if (const std::uint64_t id = ParseSegmentFileName(name); id != 0) {
      ids.push_back(id);
      continue;
    }
    if (name.size() > 5 && name.compare(name.size() - 5, 5, ".hint") == 0) {
      const std::uint64_t id =
          ParseSegmentFileName(name.substr(0, name.size() - 5) + ".tkps");
      if (id != 0) {
        has_hint[id] = true;
        continue;
      }
    }
    if (name.size() > 8 &&
        name.compare(name.size() - 8, 8, ".compact") == 0) {
      std::printf("  note: leftover %s (a compaction died before its "
                  "rename; the next open removes it)\n",
                  name.c_str());
      ++findings.notes;
      continue;
    }
    std::printf("  note: unrecognized file %s\n", name.c_str());
    ++findings.notes;
  }
  if (ec) {
    std::fprintf(stderr, "store_fsck: cannot list %s: %s\n", path.c_str(),
                 ec.message().c_str());
    return 1;
  }
  std::sort(ids.begin(), ids.end());

  std::printf("store_fsck: %s (%zu segment%s%s)\n", path.c_str(), ids.size(),
              ids.size() == 1 ? "" : "s", saw_lock ? "" : ", no LOCK file");

  KeydirShadow keydir;
  std::map<RecordKind, std::size_t> by_kind;
  std::uint64_t total_payload = 0;
  std::uint64_t total_stored = 0;  // Record bytes incl. headers, all segments.
  std::size_t total_records = 0;

  for (const std::uint64_t id : ids) {
    const std::string seg_path = path + "/" + SegmentFileName(id);
    const std::uint64_t file_size = fs::file_size(seg_path, ec);

    ExpectedHint expected;
    ReplayStats stats;
    RecordLogReader reader(seg_path);
    Status st = reader.Replay(
        [&](const Record& rec) {
          ++by_kind[rec.kind];
          expected.Track(rec);
          keydir.Apply(rec);
          if (verbose) {
            std::printf("  [%06" PRIu64 "] @%-10" PRIu64 " session=%-6"
                        PRIu64 " kind=%x (%s) payload=%zu bytes\n",
                        id, rec.offset, rec.session_id, rec.kind,
                        KindName(rec.kind), rec.payload.size());
          }
          return Status::OK();
        },
        &stats, /*strict=*/false);
    if (!st.ok()) {
      std::fprintf(stderr, "store_fsck: segment %06" PRIu64 ": %s\n", id,
                   st.ToString().c_str());
      return 1;
    }
    findings.crc_failures += stats.crc_failures;
    if (stats.torn_tail) ++findings.torn_tails;
    total_payload += stats.payload_bytes;
    if (stats.tail_offset > kFileHeaderSize) {
      total_stored += stats.tail_offset - kFileHeaderSize;
    }
    total_records += stats.records;

    // Hint cross-check: decode, size-match, then event-by-event equality
    // against what the scan says the hint must contain.
    const char* hint_state = "none (active or scanned at next open)";
    if (has_hint[id]) {
      Result<HintFileContents> hint =
          LoadHintFile(path + "/" + SegmentHintName(id));
      if (!hint.ok()) {
        hint_state = "INVALID (scan fallback + rewrite at next open)";
        ++findings.notes;
      } else if (hint->segment_file_size != file_size) {
        hint_state = "stale size (scan fallback + rewrite at next open)";
        ++findings.notes;
      } else {
        const std::vector<HintEvent> want = expected.Collect();
        const bool equal =
            hint->events.size() == want.size() &&
            std::equal(hint->events.begin(), hint->events.end(),
                       want.begin(), SameEvent);
        if (equal) {
          hint_state = "valid";
        } else {
          hint_state = "MISMATCH (hint disagrees with segment contents)";
          ++findings.hint_mismatches;
        }
      }
    }

    std::printf("  segment %06" PRIu64 "  %8" PRIu64 " bytes  %5zu records"
                "  crc-fail %zu  torn %s  hint: %s\n",
                id, file_size, stats.records, stats.crc_failures,
                stats.torn_tail ? "YES" : "no", hint_state);
  }

  std::uint64_t live_bytes = 0;
  for (const auto& [key, size] : keydir.live) live_bytes += size;
  // Both sides include record headers, so superseded records *and*
  // tombstones land in dead — the same split the engine's stats report.
  const std::uint64_t dead_bytes = total_stored - live_bytes;

  std::printf("  records            %zu\n", total_records);
  for (const auto& [kind, count] : by_kind) {
    std::printf("    kind %-10x %s: %zu\n", kind, KindName(kind), count);
  }
  std::printf("  live keys          %zu\n", keydir.live.size());
  std::printf("  payload bytes      %" PRIu64 "\n", total_payload);
  std::printf("  live bytes         %" PRIu64 "\n", live_bytes);
  std::printf("  dead bytes         %" PRIu64 " (%.1f%%)\n", dead_bytes,
              total_stored > 0 ? 100.0 * static_cast<double>(dead_bytes) /
                                     static_cast<double>(total_stored)
                               : 0.0);
  std::printf("  crc failures       %zu\n", findings.crc_failures);
  std::printf("  torn tails         %zu\n", findings.torn_tails);
  std::printf("  hint mismatches    %zu\n", findings.hint_mismatches);

  if (findings.crc_failures > 0) {
    std::fprintf(stderr, "store_fsck: FAIL — %zu CRC failure(s)\n",
                 findings.crc_failures);
    return 2;
  }
  if (findings.hint_mismatches > 0) {
    std::fprintf(stderr,
                 "store_fsck: FAIL — %zu hint file(s) disagree with their "
                 "segment's contents\n",
                 findings.hint_mismatches);
    return 2;
  }
  if (findings.torn_tails > 0 && !allow_torn_tail) {
    std::fprintf(stderr,
                 "store_fsck: FAIL — %zu torn tail(s) (re-open with "
                 "SessionStore to truncate, or pass --allow-torn-tail)\n",
                 findings.torn_tails);
    return 2;
  }
  std::printf("store_fsck: OK\n");
  return 0;
}

// Pre-segmented single-file stores: one record log is the whole database.
int FsckLegacyFile(const std::string& path, bool verbose,
                   bool allow_torn_tail) {
  RecordLogReader reader(path);
  ReplayStats stats;
  KeydirShadow keydir;
  std::map<RecordKind, std::size_t> by_kind;
  Status st = reader.Replay(
      [&](const Record& rec) {
        ++by_kind[rec.kind];
        if (verbose) {
          std::printf("  @%-10" PRIu64 " session=%-6" PRIu64
                      " kind=%u (%s) payload=%zu bytes\n",
                      rec.offset, rec.session_id, rec.kind,
                      KindName(rec.kind), rec.payload.size());
        }
        keydir.Apply(rec);
        return Status::OK();
      },
      &stats, /*strict=*/false);
  if (!st.ok()) {
    std::fprintf(stderr, "store_fsck: %s\n", st.ToString().c_str());
    return 1;
  }

  std::uint64_t live_bytes = 0;
  for (const auto& [key, size] : keydir.live) live_bytes += size;
  const std::uint64_t total = stats.tail_offset;
  const std::uint64_t dead_bytes = total - kFileHeaderSize - live_bytes;

  std::printf("store_fsck: %s (legacy single-file store)\n", path.c_str());
  std::printf("  records            %zu\n", stats.records);
  for (const auto& [kind, count] : by_kind) {
    std::printf("    kind %-10u %s: %zu\n", kind, KindName(kind), count);
  }
  std::printf("  live keys          %zu\n", keydir.live.size());
  std::printf("  payload bytes      %" PRIu64 "\n", stats.payload_bytes);
  std::printf("  live bytes         %" PRIu64 "\n", live_bytes);
  std::printf("  dead bytes         %" PRIu64 "\n", dead_bytes);
  std::printf("  crc failures       %zu\n", stats.crc_failures);
  std::printf("  torn tail          %s\n", stats.torn_tail ? "YES" : "no");

  if (stats.crc_failures > 0) {
    std::fprintf(stderr, "store_fsck: FAIL — %zu CRC failure(s)\n",
                 stats.crc_failures);
    return 2;
  }
  if (stats.torn_tail && !allow_torn_tail) {
    std::fprintf(stderr,
                 "store_fsck: FAIL — torn tail at offset %" PRIu64 "\n",
                 stats.tail_offset);
    return 2;
  }
  std::printf("store_fsck: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool verbose = false;
  bool allow_torn_tail = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(argv[i], "--allow-torn-tail") == 0) {
      allow_torn_tail = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "store_fsck: unknown flag %s\n", argv[i]);
      return 1;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: store_fsck [--verbose] [--allow-torn-tail] "
                 "<store-dir-or-file>\n");
    return 1;
  }

  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    return FsckDirectory(path, verbose, allow_torn_tail);
  }
  if (std::filesystem::is_regular_file(path, ec)) {
    return FsckLegacyFile(path, verbose, allow_torn_tail);
  }
  std::fprintf(stderr, "store_fsck: %s: no such store\n", path);
  return 1;
}
