// store_fsck — dumps and verifies a session-store record log.
//
// Walks the whole log in scan mode (CRC failures are counted, not fatal),
// rebuilds the keydir the way SessionStore::Open would, and reports record
// counts, per-kind breakdown, CRC failures, torn-tail state and
// live-vs-dead bytes. Exit codes: 0 = clean, 1 = unreadable, 2 = integrity
// findings (CRC failures, or a torn tail unless --allow-torn-tail).
//
// Usage: store_fsck [--verbose] [--allow-torn-tail] <store-file>
//
// CI runs it against the store example_durable_session writes, so the
// on-disk format the library produces is itself fsck-verified every build.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "topkpkg/storage/codec.h"
#include "topkpkg/storage/record_log.h"
#include "topkpkg/storage/session_store.h"

namespace {

using topkpkg::Status;
using topkpkg::storage::kFileHeaderSize;
using topkpkg::storage::kSessionTombstone;
using topkpkg::storage::kTombstoneBit;
using topkpkg::storage::Record;
using topkpkg::storage::RecordKind;
using topkpkg::storage::RecordLogReader;
using topkpkg::storage::ReplayStats;

const char* KindName(RecordKind kind) {
  if (kind == kSessionTombstone) return "session-tombstone";
  if ((kind & kTombstoneBit) != 0) return "tombstone";
  // Checkpoint state records alternate between the base kinds and
  // base + kKindGenSlotOffset (even-sequence generation slot); both slots
  // carry the same payload format.
  const bool alt = kind > topkpkg::storage::kKindGenSlotOffset &&
                   kind <= topkpkg::storage::kKindGenSlotOffset +
                               topkpkg::storage::kKindRoundHistory;
  const RecordKind base =
      alt ? kind - topkpkg::storage::kKindGenSlotOffset : kind;
  switch (base) {
    case topkpkg::storage::kKindPreferenceSet:
      return alt ? "preference-set (alt slot)" : "preference-set";
    case topkpkg::storage::kKindSamplePool:
      return alt ? "sample-pool (alt slot)" : "sample-pool";
    case topkpkg::storage::kKindTopListCache:
      return alt ? "top-list-cache (alt slot)" : "top-list-cache";
    case topkpkg::storage::kKindRoundHistory:
      return alt ? "round-history (alt slot)" : "round-history";
    case topkpkg::storage::kKindRecommenderMeta:
      return "recommender-meta";
    default:
      return "unknown";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool verbose = false;
  bool allow_torn_tail = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(argv[i], "--allow-torn-tail") == 0) {
      allow_torn_tail = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "store_fsck: unknown flag %s\n", argv[i]);
      return 1;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: store_fsck [--verbose] [--allow-torn-tail] "
                 "<store-file>\n");
    return 1;
  }

  RecordLogReader reader(path);
  ReplayStats stats;
  // Keydir shadow: latest live record per (session, kind), mirroring
  // SessionStore::Open.
  std::map<std::pair<std::uint64_t, RecordKind>, std::uint64_t> keydir;
  std::map<RecordKind, std::size_t> by_kind;
  Status st = reader.Replay(
      [&](const Record& rec) {
        ++by_kind[rec.kind];
        if (verbose) {
          std::printf("  @%-10" PRIu64 " session=%-6" PRIu64
                      " kind=%u (%s) payload=%zu bytes\n",
                      rec.offset, rec.session_id, rec.kind,
                      KindName(rec.kind), rec.payload.size());
        }
        if (rec.kind == kSessionTombstone) {
          auto it = keydir.lower_bound({rec.session_id, 0});
          while (it != keydir.end() && it->first.first == rec.session_id) {
            it = keydir.erase(it);
          }
        } else if ((rec.kind & kTombstoneBit) != 0) {
          keydir.erase({rec.session_id, rec.kind & ~kTombstoneBit});
        } else {
          keydir[{rec.session_id, rec.kind}] = rec.StoredSize();
        }
        return Status::OK();
      },
      &stats, /*strict=*/false);
  if (!st.ok()) {
    std::fprintf(stderr, "store_fsck: %s\n", st.ToString().c_str());
    return 1;
  }

  std::uint64_t live_bytes = 0;
  for (const auto& [key, size] : keydir) live_bytes += size;
  const std::uint64_t total = stats.tail_offset;
  const std::uint64_t dead_bytes = total - kFileHeaderSize - live_bytes;

  std::printf("store_fsck: %s\n", path);
  std::printf("  records            %zu\n", stats.records);
  for (const auto& [kind, count] : by_kind) {
    std::printf("    kind %-10u %s: %zu\n", kind, KindName(kind), count);
  }
  std::printf("  live keys          %zu\n", keydir.size());
  std::printf("  payload bytes      %" PRIu64 "\n", stats.payload_bytes);
  std::printf("  live bytes         %" PRIu64 "\n", live_bytes);
  std::printf("  dead bytes         %" PRIu64 " (%.1f%%)\n", dead_bytes,
              total > kFileHeaderSize
                  ? 100.0 * static_cast<double>(dead_bytes) /
                        static_cast<double>(total - kFileHeaderSize)
                  : 0.0);
  std::printf("  crc failures       %zu\n", stats.crc_failures);
  std::printf("  torn tail          %s\n", stats.torn_tail ? "YES" : "no");

  if (stats.crc_failures > 0) {
    std::fprintf(stderr, "store_fsck: FAIL — %zu CRC failure(s)\n",
                 stats.crc_failures);
    return 2;
  }
  if (stats.torn_tail && !allow_torn_tail) {
    std::fprintf(stderr,
                 "store_fsck: FAIL — torn tail at offset %" PRIu64
                 " (re-open with SessionStore to truncate, or pass "
                 "--allow-torn-tail)\n",
                 stats.tail_offset);
    return 2;
  }
  std::printf("store_fsck: OK\n");
  return 0;
}
