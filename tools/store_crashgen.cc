// store_crashgen — deterministic crash-state generator for the session
// store, built for the CI crash-injection loop.
//
// Runs a fixed overwrite-heavy workload (puts, deletes, session deletes,
// one manual compaction) against a SessionStore on a FaultInjectingEnv
// with tiny segments, so rolls and compactions fire. With --crash-at=N the
// N-th mutating filesystem operation kills the store mid-flight (a short
// write, a failed fsync, a dropped rename — wherever op N lands); the tool
// then simulates power loss (every unsynced byte beyond a small torn-tail
// sliver vanishes), reopens the store with a healthy env, and verifies the
// recovered store serves reads and accepts writes. Exit 0 means the crash
// state recovered; any other exit is a recovery bug.
//
// The CI job sweeps N and runs store_fsck after each cycle, so every
// reachable crash layout is both recovered *and* integrity-checked on
// every build.
//
// Usage: store_crashgen [--count=N] [--crash-at=N] <store-dir>
//   --count=N     workload mutations to attempt (default 40)
//   --crash-at=N  mutating env op to crash at (default: never crash).
//                 Past the last op the run is fault-free; the tool prints
//                 "beyond" so the sweep knows it can stop.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "topkpkg/storage/fault_env.h"
#include "topkpkg/storage/session_store.h"

namespace {

using topkpkg::Result;
using topkpkg::Status;
using topkpkg::storage::Env;
using topkpkg::storage::FaultInjectingEnv;
using topkpkg::storage::FsyncPolicy;
using topkpkg::storage::RecordKind;
using topkpkg::storage::SessionStore;
using topkpkg::storage::SessionStoreOptions;

SessionStoreOptions SmallSegmentOptions(Env* env) {
  SessionStoreOptions opts;
  opts.fsync_policy = FsyncPolicy::kInterval;
  opts.group_commit_puts = 5;
  opts.segment_max_bytes = 384;  // Tiny: the workload rolls several times.
  opts.compact_dead_ratio = 0.5;
  opts.env = env;
  return opts;
}

// Same deterministic workload shape as the crash-sweep property test:
// overwrite-heavy so sealed segments go mostly dead and compaction fires.
Status ApplyOp(int i, SessionStore& store) {
  const std::uint64_t sid = 1 + static_cast<std::uint64_t>(i % 4);
  if (i == 25) return store.Compact();
  if (i % 11 == 7) return store.DeleteSession(sid);
  const RecordKind kind = 1 + static_cast<RecordKind>(i % 3);
  if (i % 7 == 3) return store.Delete(sid, kind);
  return store.Put(
      sid, kind,
      "op-" + std::to_string(i) + "-" +
          std::string(20 + static_cast<std::size_t>(i * 13 % 60),
                      static_cast<char>('a' + i % 26)));
}

}  // namespace

int main(int argc, char** argv) {
  int count = 40;
  std::int64_t crash_at = -1;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--count=", 8) == 0) {
      count = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--crash-at=", 11) == 0) {
      crash_at = std::atoll(argv[i] + 11);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "store_crashgen: unknown flag %s\n", argv[i]);
      return 1;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr || count <= 0) {
    std::fprintf(stderr,
                 "usage: store_crashgen [--count=N] [--crash-at=N] "
                 "<store-dir>\n");
    return 1;
  }

  FaultInjectingEnv env(Env::Default());
  env.set_crash_at(crash_at);

  int acked = 0;
  {
    Result<SessionStore> store =
        SessionStore::Open(path, SmallSegmentOptions(&env));
    if (store.ok()) {
      for (int i = 0; i < count; ++i) {
        if (!ApplyOp(i, *store).ok()) break;
        acked = i + 1;
      }
    } else if (!env.crashed()) {
      std::fprintf(stderr, "store_crashgen: open failed without a fault: "
                           "%s\n",
                   store.status().ToString().c_str());
      return 1;
    }
  }

  if (!env.crashed()) {
    if (crash_at >= 0) {
      // The sweep driver reads this: the failpoint is past the run's op
      // count, so higher values cannot produce new crash states.
      std::printf("store_crashgen: crash-at %" PRId64 " beyond run (%" PRIu64
                  " ops); store left clean\n",
                  crash_at, env.ops());
    } else {
      std::printf("store_crashgen: clean run, %d ops\n", acked);
    }
    return 0;
  }

  // Power loss: unsynced bytes vanish except a deterministic sliver, so
  // the sweep also exercises torn-record boundaries.
  Status lost = env.LoseUnsyncedData(static_cast<std::uint64_t>(
      crash_at % 5));
  if (!lost.ok()) {
    std::fprintf(stderr, "store_crashgen: LoseUnsyncedData: %s\n",
                 lost.ToString().c_str());
    return 1;
  }

  // Reboot: recovery must open the crash state and serve.
  env.set_crash_at(-1);
  env.ResetCounters();
  Result<SessionStore> recovered =
      SessionStore::Open(path, SmallSegmentOptions(&env));
  if (!recovered.ok()) {
    std::fprintf(stderr,
                 "store_crashgen: RECOVERY FAILED after crash at op %" PRId64
                 " (%d ops acked): %s\n",
                 crash_at, acked, recovered.status().ToString().c_str());
    return 2;
  }
  Status probe = recovered->Put(999, 1, "post-recovery-probe");
  Status flushed = probe.ok() ? recovered->Flush() : probe;
  if (!flushed.ok()) {
    std::fprintf(stderr,
                 "store_crashgen: recovered store not writable: %s\n",
                 flushed.ToString().c_str());
    return 2;
  }
  std::printf("store_crashgen: crashed at op %" PRId64 " (%d/%d acked), "
              "recovered %zu keys across %zu segment(s)\n",
              crash_at, acked, count, recovered->keydir_size(),
              recovered->stats().segments);
  return 0;
}
