#!/usr/bin/env python3
"""Validates a Prometheus text exposition file written by topkpkg.

Checks (all structural; no Prometheus client library needed):
  * every line is a comment, blank, or a well-formed `name[{labels}] value`
  * each family has at most one # TYPE line and it precedes its samples
  * no duplicate (name, labels) sample
  * counter values are non-negative (monotonicity within one snapshot)
  * histogram cumulative buckets are monotone non-decreasing per series,
    end with an le="+Inf" bucket, and that bucket equals _count
  * with --require PREFIX (repeatable): at least one sample name starts
    with each required prefix — CI uses this to prove the scrape contains
    live serving/storage/search/sampling series.

Exit status: 0 clean, 1 validation failure, 2 usage error.
"""

import argparse
import math
import re
import sys

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>-?(?:[0-9].*|\+?Inf|NaN))$"
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def split_labels(body):
    """Splits a label body on commas outside quoted values."""
    parts, cur, in_quotes, escaped = [], "", False, False
    for c in body:
        if escaped:
            cur += c
            escaped = False
            continue
        if c == "\\":
            cur += c
            escaped = True
            continue
        if c == '"':
            in_quotes = not in_quotes
        if c == "," and not in_quotes:
            parts.append(cur)
            cur = ""
        else:
            cur += c
    if cur:
        parts.append(cur)
    return parts


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("path", help="Prometheus text file to validate")
    ap.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="PREFIX",
        help="fail unless some sample name starts with PREFIX (repeatable)",
    )
    args = ap.parse_args()

    try:
        with open(args.path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"check_metrics_format: {e}", file=sys.stderr)
        return 2

    errors = []
    types = {}  # family -> type string
    seen_samples = set()  # (name, labels)
    sample_names = set()
    # histogram series key -> list of (le, cumulative) in file order
    hist_buckets = {}
    hist_counts = {}

    def family_of(name):
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                return base, suffix
        return name, ""

    for lineno, line in enumerate(lines, 1):
        if not line:
            continue
        if line.startswith("#"):
            fields = line.split(None, 3)
            if len(fields) >= 2 and fields[1] == "TYPE":
                if len(fields) != 4:
                    errors.append(f"{lineno}: malformed TYPE line")
                    continue
                fam, typ = fields[2], fields[3]
                if fam in types:
                    errors.append(f"{lineno}: duplicate TYPE for {fam}")
                if typ not in ("counter", "gauge", "histogram"):
                    errors.append(f"{lineno}: unknown type {typ!r}")
                types[fam] = typ
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"{lineno}: malformed sample line: {line!r}")
            continue
        name, labels, raw = m.group("name"), m.group("labels") or "", m.group("value")
        try:
            value = parse_value(raw)
        except ValueError:
            errors.append(f"{lineno}: unparsable value {raw!r}")
            continue
        for part in split_labels(labels):
            if not LABEL_RE.match(part):
                errors.append(f"{lineno}: malformed label {part!r}")
        key = (name, labels)
        if key in seen_samples:
            errors.append(f"{lineno}: duplicate sample {name}{{{labels}}}")
        seen_samples.add(key)
        sample_names.add(name)

        fam, suffix = family_of(name)
        typ = types.get(fam)
        if typ is None:
            errors.append(f"{lineno}: sample {name} precedes its TYPE line")
            continue
        if typ == "counter":
            if math.isnan(value) or value < 0:
                errors.append(f"{lineno}: counter {name} value {raw} < 0")
        elif typ == "histogram":
            if not suffix:
                errors.append(f"{lineno}: bare sample for histogram {fam}")
                continue
            rest = [p for p in split_labels(labels) if not p.startswith('le="')]
            series = fam + "{" + ",".join(rest) + "}"
            if suffix == "_bucket":
                le_parts = [p for p in split_labels(labels) if p.startswith('le="')]
                if len(le_parts) != 1:
                    errors.append(f"{lineno}: bucket of {fam} needs exactly one le")
                    continue
                le = parse_value(le_parts[0][4:-1])
                hist_buckets.setdefault(series, []).append((lineno, le, value))
            elif suffix == "_count":
                hist_counts[series] = (lineno, value)

    for series, buckets in sorted(hist_buckets.items()):
        prev = -math.inf
        prev_cum = -1.0
        for lineno, le, cum in buckets:
            if le <= prev:
                errors.append(f"{lineno}: {series} bucket edges not increasing")
            if cum < prev_cum:
                errors.append(f"{lineno}: {series} cumulative counts decrease")
            prev, prev_cum = le, cum
        if not buckets or not math.isinf(buckets[-1][1]):
            errors.append(f"{series}: missing le=\"+Inf\" bucket")
        elif series in hist_counts and buckets[-1][2] != hist_counts[series][1]:
            errors.append(f"{series}: +Inf bucket != _count")
        if series not in hist_counts:
            errors.append(f"{series}: missing _count sample")

    for prefix in args.require:
        if not any(n.startswith(prefix) for n in sample_names):
            errors.append(f"required metric prefix {prefix!r} has no samples")

    if errors:
        for e in errors:
            print(f"check_metrics_format: {args.path}: {e}", file=sys.stderr)
        return 1
    print(
        f"check_metrics_format: {args.path}: OK "
        f"({len(seen_samples)} samples, {len(types)} families)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
