#!/usr/bin/env python3
"""Bench-regression guard for the search-kernel microbenches.

Compares a fresh google-benchmark JSON (the CI smoke run's
BENCH_search_kernel.json) against the committed baseline and fails when any
BM_TopKPkgSearch or BM_TopKPkgSearchBatch case (the batched walk and its
width-matched scalar_pool reference both) slowed down by more than the
threshold (default 1.5x).

Smoke runs on shared CI runners are noisy and the baseline was recorded on a
different machine, so raw time ratios would mostly measure the runner, not
the code. The guard therefore normalizes by a machine factor: the median
fresh/baseline ratio over the *kernel-independent* benchmarks in the same
artifact (BM_MixtureLogPdf, BM_ConstraintCheck, BM_MaintenanceHybrid, ...).
A genuine search-kernel regression moves the guarded cases against that
median; a slow runner moves everything together and cancels out. Benches
that themselves run through the aggregation/search kernel (BM_UpperExp,
BM_ExpandPackages, ...) are excluded from calibration — they would absorb a
shared-kernel regression into the machine factor. With no calibration cases
the raw ratio is used.

Usage: check_bench_regression.py <baseline.json> <fresh.json> [threshold]
"""

import json
import re
import statistics
import sys

GUARDED = re.compile(r"^BM_TopKPkgSearch(Batch)?(/|$)")

# Benches that run through the same aggregation/search kernel as the guarded
# cases. They must NOT calibrate the machine factor: a shared-kernel
# regression would slow them and the guarded cases equally and normalize
# itself away. Calibration uses only kernel-independent benches
# (BM_MixtureLogPdf, BM_ConstraintCheck, BM_MaintenanceHybrid, ...).
KERNEL_LINKED = re.compile(r"^BM_(UpperExp|ExpandPackages|AggregateState)")


# Per-case runtime knobs google-benchmark bakes into the reported name.
# The CI smoke run may raise the guarded cases' measurement window
# (bench_micro_kernels --guard-min-time=S, the noise margin for shared
# runners), which names them e.g. "BM_TopKPkgSearch/1000/min_time:0.250";
# the committed baseline has no such suffix, so names are normalized
# before matching.
NAME_SUFFIXES = re.compile(r"/(min_time|min_warmup_time|iterations|"
                           r"repeats|manual_time|process_time|threads):"
                           r"[0-9.]+")


def load_times(path):
    """benchmark name -> cpu_time (ns), aggregates and error entries skipped."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate" or "error_occurred" in b:
            continue
        name = b.get("name")
        cpu = b.get("cpu_time")
        if name and isinstance(cpu, (int, float)) and cpu > 0:
            times[NAME_SUFFIXES.sub("", name)] = float(cpu)
    return times


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    threshold = float(argv[3]) if len(argv) > 3 else 1.5
    base = load_times(argv[1])
    fresh = load_times(argv[2])

    # Every guarded case must appear on BOTH sides. A case present in the
    # baseline but absent from the fresh smoke run (dropped bench, renamed
    # case, narrowed CI filter) would silently shrink the guard's coverage;
    # a fresh-only case is running unguarded without a baseline. Either way
    # the guard is no longer checking what it claims to, so fail loudly
    # instead of skipping the case.
    base_guarded = {n for n in base if GUARDED.match(n)}
    fresh_guarded = {n for n in fresh if GUARDED.match(n)}
    missing_fresh = sorted(base_guarded - fresh_guarded)
    missing_base = sorted(fresh_guarded - base_guarded)
    if missing_fresh:
        print("bench-guard: ERROR: guarded benchmark(s) in the baseline but "
              "missing from the fresh run: " + ", ".join(missing_fresh))
        print("bench-guard: the smoke run no longer exercises these cases "
              "(renamed bench, narrowed --benchmark_filter, or a crashed "
              "run). Fix the run or refresh "
              "bench/baselines/BENCH_search_kernel.json deliberately.")
    if missing_base:
        print("bench-guard: ERROR: guarded benchmark(s) in the fresh run but "
              "absent from the baseline: " + ", ".join(missing_base))
        print("bench-guard: these cases are running without a baseline to "
              "guard against; record them in "
              "bench/baselines/BENCH_search_kernel.json.")
    if missing_fresh or missing_base:
        return 1

    common = sorted(set(base) & set(fresh))
    if not common:
        print("bench-guard: no common benchmarks between baseline and fresh "
              "run; nothing to check")
        return 0

    calibration = [fresh[n] / base[n] for n in common
                   if not GUARDED.match(n) and not KERNEL_LINKED.match(n)]
    machine = statistics.median(calibration) if calibration else 1.0
    print(f"bench-guard: machine factor {machine:.3f} "
          f"(median over {len(calibration)} calibration cases)")

    failed = []
    for name in common:
        if not GUARDED.match(name):
            continue
        ratio = fresh[name] / base[name]
        normalized = ratio / machine
        status = "FAIL" if normalized > threshold else "ok"
        print(f"bench-guard: {name}: {base[name]:.0f} -> {fresh[name]:.0f} ns "
              f"(x{ratio:.2f} raw, x{normalized:.2f} normalized) [{status}]")
        if normalized > threshold:
            failed.append(name)

    checked = sum(1 for n in common if GUARDED.match(n))
    if checked == 0:
        # A rename or CI filter change would otherwise kill the guard while
        # it keeps reporting success — fail loudly instead.
        print("bench-guard: ERROR: no BM_TopKPkgSearch case present in both "
              "baseline and fresh run; the guard is not checking anything. "
              "Update tools/check_bench_regression.py / the baseline to "
              "match the renamed benchmarks.")
        return 1
    if failed:
        print(f"bench-guard: {len(failed)} case(s) slowed down more than "
              f"{threshold}x vs the committed baseline: {', '.join(failed)}")
        print("bench-guard: if the slowdown is intended, refresh "
              "bench/baselines/BENCH_search_kernel.json in the same change")
        return 1
    print(f"bench-guard: all {checked} BM_TopKPkgSearch cases within "
          "threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
