// metrics_dump: human-readable summary of a Prometheus-text metrics
// snapshot (the file TOPKPKG_METRICS_OUT / MetricsRegistry::DumpToFile
// writes). Counters and gauges print as-is; histograms are summarized as
// count / sum / p50 / p95 / p99, with the quantiles re-derived from the
// cumulative `_bucket{le="..."}` series by the same nearest-rank rule the
// in-process Histogram::Quantile uses — so the tool doubles as an external
// check that the exported buckets support quantile extraction at all.
//
// Usage: metrics_dump <snapshot.prom>
// Exits non-zero on unreadable input or a malformed exposition line.

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

struct HistogramSeries {
  // (upper edge, cumulative count) in file order; +Inf parses to infinity.
  std::vector<std::pair<double, std::uint64_t>> buckets;
  double sum = 0.0;
  std::uint64_t count = 0;
};

struct ParsedSample {
  std::string name;
  std::string labels;  // Body without braces; empty if none.
  double value = 0.0;
};

bool ParseSampleLine(const std::string& line, ParsedSample* out,
                     std::string* error) {
  const std::size_t brace = line.find('{');
  std::size_t value_pos;
  if (brace != std::string::npos) {
    const std::size_t close = line.find('}', brace);
    if (close == std::string::npos) {
      *error = "unterminated label set";
      return false;
    }
    out->name = line.substr(0, brace);
    out->labels = line.substr(brace + 1, close - brace - 1);
    value_pos = close + 1;
  } else {
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) {
      *error = "no value field";
      return false;
    }
    out->name = line.substr(0, space);
    out->labels.clear();
    value_pos = space;
  }
  if (out->name.empty()) {
    *error = "empty metric name";
    return false;
  }
  const std::string value_str = line.substr(value_pos);
  std::istringstream vs(value_str);
  std::string token;
  if (!(vs >> token)) {
    *error = "no value field";
    return false;
  }
  if (token == "+Inf") {
    out->value = std::numeric_limits<double>::infinity();
    return true;
  }
  try {
    std::size_t used = 0;
    out->value = std::stod(token, &used);
    if (used != token.size()) {
      *error = "trailing junk in value '" + token + "'";
      return false;
    }
  } catch (const std::exception&) {
    *error = "unparsable value '" + token + "'";
    return false;
  }
  return true;
}

// Pulls `le="..."` out of a bucket label body, returning the remaining
// labels (the series key) and the edge value.
bool SplitLeLabel(const std::string& labels, std::string* rest, double* le,
                  std::string* error) {
  std::vector<std::string> parts;
  std::string cur;
  bool in_quotes = false;
  for (char c : labels) {
    if (c == '"') in_quotes = !in_quotes;
    if (c == ',' && !in_quotes) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  rest->clear();
  bool found = false;
  for (const std::string& p : parts) {
    if (p.rfind("le=\"", 0) == 0 && p.size() >= 5 && p.back() == '"') {
      const std::string edge = p.substr(4, p.size() - 5);
      if (edge == "+Inf") {
        *le = std::numeric_limits<double>::infinity();
      } else {
        try {
          *le = std::stod(edge);
        } catch (const std::exception&) {
          *error = "unparsable le edge '" + edge + "'";
          return false;
        }
      }
      found = true;
    } else {
      if (!rest->empty()) *rest += ',';
      *rest += p;
    }
  }
  if (!found) {
    *error = "histogram bucket without an le label";
    return false;
  }
  return true;
}

// Nearest-rank quantile over cumulative buckets (mirrors
// obs::Histogram::Quantile, minus the min/max clamp the text format does
// not carry).
double BucketQuantile(const HistogramSeries& h, double q) {
  if (h.count == 0) return 0.0;
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(h.count)));
  if (rank < 1) rank = 1;
  if (rank > h.count) rank = h.count;
  for (const auto& [edge, cum] : h.buckets) {
    if (cum >= rank) return edge;
  }
  return h.buckets.empty() ? 0.0 : h.buckets.back().first;
}

std::string SeriesName(const std::string& name, const std::string& labels) {
  return labels.empty() ? name : name + "{" + labels + "}";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: metrics_dump <snapshot.prom>\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "metrics_dump: cannot open " << argv[1] << "\n";
    return 1;
  }

  std::map<std::string, std::string> family_type;  // family -> counter|...
  // Ordered so the report is stable and grep-able.
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSeries> histograms;

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hs(line);
      std::string hash, kind, fam, rest;
      hs >> hash >> kind >> fam;
      if (kind == "TYPE" && hs >> rest) family_type[fam] = rest;
      continue;
    }
    ParsedSample s;
    std::string error;
    if (!ParseSampleLine(line, &s, &error)) {
      std::cerr << "metrics_dump: " << argv[1] << ":" << lineno << ": "
                << error << "\n";
      return 1;
    }
    // Resolve the owning family: histogram samples append _bucket/_sum/
    // _count to the family name.
    std::string fam = s.name;
    std::string suffix;
    for (const char* suf : {"_bucket", "_sum", "_count"}) {
      const std::string sufs(suf);
      if (fam.size() > sufs.size() &&
          fam.compare(fam.size() - sufs.size(), sufs.size(), sufs) == 0) {
        const std::string base = fam.substr(0, fam.size() - sufs.size());
        auto it = family_type.find(base);
        if (it != family_type.end() && it->second == "histogram") {
          fam = base;
          suffix = sufs;
          break;
        }
      }
    }
    auto type_it = family_type.find(fam);
    const std::string type =
        type_it == family_type.end() ? "untyped" : type_it->second;
    if (type == "histogram") {
      if (suffix.empty()) {
        std::cerr << "metrics_dump: " << argv[1] << ":" << lineno
                  << ": bare sample for histogram family " << fam << "\n";
        return 1;
      }
      std::string rest = s.labels;
      double le = 0.0;
      if (suffix == "_bucket") {
        if (!SplitLeLabel(s.labels, &rest, &le, &error)) {
          std::cerr << "metrics_dump: " << argv[1] << ":" << lineno << ": "
                    << error << "\n";
          return 1;
        }
      }
      HistogramSeries& h = histograms[SeriesName(fam, rest)];
      if (suffix == "_bucket") {
        h.buckets.emplace_back(le, static_cast<std::uint64_t>(s.value));
      } else if (suffix == "_sum") {
        h.sum = s.value;
      } else {
        h.count = static_cast<std::uint64_t>(s.value);
      }
    } else if (type == "counter") {
      counters[SeriesName(s.name, s.labels)] = s.value;
    } else {
      gauges[SeriesName(s.name, s.labels)] = s.value;
    }
  }

  std::cout << "== counters (" << counters.size() << ") ==\n";
  for (const auto& [name, v] : counters) {
    std::cout << "  " << name << " = "
              << static_cast<long long>(v) << "\n";
  }
  std::cout << "== gauges (" << gauges.size() << ") ==\n";
  for (const auto& [name, v] : gauges) {
    std::cout << "  " << name << " = " << v << "\n";
  }
  std::cout << "== histograms (" << histograms.size() << ") ==\n";
  bool histograms_ok = true;
  for (auto& [name, h] : histograms) {
    // The exposition contract: cumulative counts are monotone in file
    // order and the final bucket (+Inf) equals _count.
    std::uint64_t prev = 0;
    for (const auto& [edge, cum] : h.buckets) {
      (void)edge;
      if (cum < prev) {
        std::cerr << "metrics_dump: non-monotone buckets in " << name << "\n";
        histograms_ok = false;
      }
      prev = cum;
    }
    if (!h.buckets.empty() && h.buckets.back().second != h.count) {
      std::cerr << "metrics_dump: +Inf bucket != _count in " << name << "\n";
      histograms_ok = false;
    }
    std::cout << "  " << name << ": count=" << h.count << " sum=" << h.sum
              << " p50<=" << BucketQuantile(h, 0.50)
              << " p95<=" << BucketQuantile(h, 0.95)
              << " p99<=" << BucketQuantile(h, 0.99) << "\n";
  }
  return histograms_ok ? 0 : 1;
}
